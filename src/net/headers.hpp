// Minimal Ethernet/IPv4/TCP/UDP header codecs: enough to build raw test
// packets and to extract the 5-tuple descriptor the way the prototype's
// header parser does in front of the Flow LUT.
#pragma once

#include <array>
#include <optional>
#include <span>
#include <vector>

#include "common/types.hpp"
#include "net/tuple.hpp"

namespace flowcam::net {

inline constexpr u16 kEtherTypeIpv4 = 0x0800;
inline constexpr u16 kEtherTypeVlan = 0x8100;
inline constexpr std::size_t kEthHeaderBytes = 14;
inline constexpr std::size_t kIpv4MinHeaderBytes = 20;

struct MacAddress {
    std::array<u8, 6> octets{};
};

/// Everything needed to synthesize one well-formed packet.
struct PacketSpec {
    MacAddress src_mac;
    MacAddress dst_mac;
    std::optional<u16> vlan;  ///< 802.1Q tag if set.
    FiveTuple tuple;
    u16 payload_bytes = 0;
    u8 ttl = 64;
};

/// Serialize a packet (L2 through L4 + zero payload). No FCS.
[[nodiscard]] std::vector<u8> build_packet(const PacketSpec& spec);

/// Result of parsing a raw frame.
struct ParsedPacket {
    FiveTuple tuple;
    u16 ip_total_length = 0;
    u16 frame_bytes = 0;  ///< L2 frame size as given (no FCS).
    bool has_vlan = false;
};

/// Parse Ethernet[+VLAN]/IPv4/{TCP,UDP}. Returns nullopt for anything the
/// flow path cannot classify (non-IPv4, truncated, unsupported protocol —
/// ICMP parses with zero ports, matching how flow processors bucket it).
[[nodiscard]] std::optional<ParsedPacket> parse_packet(std::span<const u8> frame);

/// RFC 1071 checksum over a header.
[[nodiscard]] u16 ipv4_header_checksum(std::span<const u8> header);

}  // namespace flowcam::net
