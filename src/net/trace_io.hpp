// Binary trace file format ("FCT1"): a fixed 16-byte little-endian record
// per packet. Lets examples persist generated traces and re-run experiments
// on identical input without carrying a pcap dependency.
//
// Record layout: u64 timestamp_ns | u32 src_ip | u32 dst_ip  (16 bytes)
//                u16 src_port | u16 dst_port | u8 proto | u8 pad | u16 bytes
// (so 24 bytes total per record, after the 8-byte file header).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "net/trace.hpp"

namespace flowcam::net {

inline constexpr char kTraceMagic[4] = {'F', 'C', 'T', '1'};

/// Write records to `path`. Returns kUnavailable when the file cannot open.
Status write_trace(const std::string& path, const std::vector<PacketRecord>& records);

/// Read a whole trace file back.
Result<std::vector<PacketRecord>> read_trace(const std::string& path);

}  // namespace flowcam::net
