// Flow keys: the classic IPv4 5-tuple and a generalized n-tuple container.
//
// The paper identifies flows by "common n-tuple information" — destination/
// source addresses, destination/source ports and protocol (§III-B). The
// serialized byte form of a tuple is the key fed to the hash blocks and
// stored in the Flow LUT for exact match.
#pragma once

#include <array>
#include <compare>
#include <cstddef>
#include <span>
#include <string>

#include "common/types.hpp"

namespace flowcam::net {

/// IPv4 5-tuple, 13 bytes serialized.
struct FiveTuple {
    u32 src_ip = 0;
    u32 dst_ip = 0;
    u16 src_port = 0;
    u16 dst_port = 0;
    u8 protocol = 0;

    static constexpr std::size_t kKeyBytes = 13;

    /// Canonical big-endian byte serialization (what the header parser
    /// extracts on the wire path).
    [[nodiscard]] std::array<u8, kKeyBytes> key_bytes() const;
    [[nodiscard]] static FiveTuple from_key_bytes(std::span<const u8> bytes);

    [[nodiscard]] std::string to_string() const;

    friend auto operator<=>(const FiveTuple&, const FiveTuple&) = default;
};

struct FiveTupleHash {
    std::size_t operator()(const FiveTuple& t) const {
        // FNV-1a over the serialized key; only for host-side std containers.
        u64 h = 0xcbf29ce484222325ull;
        for (const u8 byte : t.key_bytes()) {
            h ^= byte;
            h *= 0x100000001b3ull;
        }
        return static_cast<std::size_t>(h);
    }
};

/// Generalized n-tuple: a bounded byte string of header fields. Covers IPv6
/// 5-tuples (37 bytes) and user-defined field sets; the Flow LUT treats keys
/// opaquely, which is what makes the scheme "scalable with respect to ...
/// number of tuples" (paper §VI).
class NTuple {
  public:
    static constexpr std::size_t kMaxBytes = 40;

    NTuple() = default;
    explicit NTuple(std::span<const u8> bytes);
    [[nodiscard]] static NTuple from_five_tuple(const FiveTuple& tuple);

    [[nodiscard]] std::span<const u8> view() const { return {bytes_.data(), length_}; }
    [[nodiscard]] std::size_t size() const { return length_; }
    [[nodiscard]] bool empty() const { return length_ == 0; }

    /// Append one field (big-endian). Silently truncates at kMaxBytes — the
    /// hardware key register has a fixed width.
    void append_field(u64 value, std::size_t bytes);

    friend bool operator==(const NTuple& a, const NTuple& b) {
        return a.length_ == b.length_ &&
               std::equal(a.bytes_.begin(), a.bytes_.begin() + a.length_, b.bytes_.begin());
    }

  private:
    std::array<u8, kMaxBytes> bytes_{};
    std::size_t length_ = 0;
};

/// Protocol numbers used across examples and tests.
inline constexpr u8 kProtoTcp = 6;
inline constexpr u8 kProtoUdp = 17;
inline constexpr u8 kProtoIcmp = 1;

}  // namespace flowcam::net
