// IPv6 flow keys and header codec.
//
// The paper's scheme is "scalable with respect to flow table entries and
// number of tuples for lookup" (§VI); an IPv6 5-tuple is the canonical
// wider tuple: 37 bytes serialized (2x16B addresses + ports + protocol),
// which still fits the NTuple/CAM key budget (40 B) and a 48-byte table
// entry. This header provides the address type, the 5-tuple, and an
// Ethernet/IPv6/{TCP,UDP} codec mirroring the IPv4 one.
#pragma once

#include <array>
#include <compare>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "net/tuple.hpp"

namespace flowcam::net {

inline constexpr u16 kEtherTypeIpv6 = 0x86DD;
inline constexpr std::size_t kIpv6HeaderBytes = 40;

struct Ipv6Address {
    std::array<u8, 16> octets{};

    [[nodiscard]] static Ipv6Address from_words(u64 hi, u64 lo);
    [[nodiscard]] std::string to_string() const;

    friend auto operator<=>(const Ipv6Address&, const Ipv6Address&) = default;
};

/// IPv6 5-tuple, 37 bytes serialized.
struct SixTuple {
    Ipv6Address src_ip;
    Ipv6Address dst_ip;
    u16 src_port = 0;
    u16 dst_port = 0;
    u8 protocol = 0;

    static constexpr std::size_t kKeyBytes = 37;

    [[nodiscard]] std::array<u8, kKeyBytes> key_bytes() const;
    [[nodiscard]] static SixTuple from_key_bytes(std::span<const u8> bytes);
    [[nodiscard]] NTuple to_ntuple() const;
    [[nodiscard]] std::string to_string() const;

    friend auto operator<=>(const SixTuple&, const SixTuple&) = default;
};

/// Packet spec for synthesizing IPv6 frames.
struct Ipv6PacketSpec {
    SixTuple tuple;
    u16 payload_bytes = 0;
    u8 hop_limit = 64;
};

/// Serialize Ethernet/IPv6/{TCP,UDP} (no FCS, no extension headers).
[[nodiscard]] std::vector<u8> build_packet_v6(const Ipv6PacketSpec& spec);

struct ParsedPacketV6 {
    SixTuple tuple;
    u16 payload_length = 0;
    u16 frame_bytes = 0;
};

/// Parse an Ethernet/IPv6/{TCP,UDP} frame. Extension headers are not
/// traversed (the hardware fast path punts those to software);
/// frames with extension headers return nullopt.
[[nodiscard]] std::optional<ParsedPacketV6> parse_packet_v6(std::span<const u8> frame);

/// Deterministic synthetic IPv6 tuple per flow index (mirrors synth_tuple).
[[nodiscard]] SixTuple synth_tuple_v6(u64 flow_index, u64 seed);

}  // namespace flowcam::net
