#include "net/tuple.hpp"

#include <algorithm>
#include <sstream>

namespace flowcam::net {
namespace {

void put_be(u8* out, u64 value, std::size_t bytes) {
    for (std::size_t i = 0; i < bytes; ++i) {
        out[i] = static_cast<u8>(value >> (8 * (bytes - 1 - i)));
    }
}

u64 get_be(const u8* in, std::size_t bytes) {
    u64 value = 0;
    for (std::size_t i = 0; i < bytes; ++i) value = (value << 8) | in[i];
    return value;
}

}  // namespace

std::array<u8, FiveTuple::kKeyBytes> FiveTuple::key_bytes() const {
    std::array<u8, kKeyBytes> out{};
    put_be(out.data(), src_ip, 4);
    put_be(out.data() + 4, dst_ip, 4);
    put_be(out.data() + 8, src_port, 2);
    put_be(out.data() + 10, dst_port, 2);
    out[12] = protocol;
    return out;
}

FiveTuple FiveTuple::from_key_bytes(std::span<const u8> bytes) {
    FiveTuple t;
    if (bytes.size() < kKeyBytes) return t;
    t.src_ip = static_cast<u32>(get_be(bytes.data(), 4));
    t.dst_ip = static_cast<u32>(get_be(bytes.data() + 4, 4));
    t.src_port = static_cast<u16>(get_be(bytes.data() + 8, 2));
    t.dst_port = static_cast<u16>(get_be(bytes.data() + 10, 2));
    t.protocol = bytes[12];
    return t;
}

std::string FiveTuple::to_string() const {
    const auto ip = [](u32 addr) {
        std::ostringstream os;
        os << ((addr >> 24) & 0xFF) << '.' << ((addr >> 16) & 0xFF) << '.' << ((addr >> 8) & 0xFF)
           << '.' << (addr & 0xFF);
        return os.str();
    };
    std::ostringstream os;
    os << ip(src_ip) << ':' << src_port << " -> " << ip(dst_ip) << ':' << dst_port << " proto "
       << static_cast<int>(protocol);
    return os.str();
}

NTuple::NTuple(std::span<const u8> bytes) {
    length_ = std::min(bytes.size(), kMaxBytes);
    std::copy_n(bytes.begin(), length_, bytes_.begin());
}

NTuple NTuple::from_five_tuple(const FiveTuple& tuple) {
    const auto key = tuple.key_bytes();
    return NTuple(std::span<const u8>{key.data(), key.size()});
}

void NTuple::append_field(u64 value, std::size_t bytes) {
    const std::size_t room = kMaxBytes - length_;
    const std::size_t take = std::min(bytes, room);
    // Keep the least-significant `take` bytes so a truncated field is still
    // discriminating.
    for (std::size_t i = 0; i < take; ++i) {
        bytes_[length_ + i] = static_cast<u8>(value >> (8 * (take - 1 - i)));
    }
    length_ += take;
}

}  // namespace flowcam::net
