// Binary Content Addressable Memory model.
//
// In the paper's Hash-CAM table (Fig. 1) a small on-chip CAM absorbs hash
// collisions that overflow a bucket. A hardware CAM compares the search key
// against every stored entry in parallel in one cycle; we model that as an
// O(n) scan guarded by an exact-match map for large CAMs, while keeping the
// single-cycle timing semantics at the architectural level.
#pragma once

#include <algorithm>
#include <array>
#include <cstddef>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/result.hpp"
#include "common/types.hpp"

namespace flowcam::cam {

/// Fixed-width CAM key. The Flow LUT stores n-tuple descriptors up to
/// 320 bits (IPv6 5-tuple); 40 bytes covers that and leaves headroom.
inline constexpr std::size_t kMaxKeyBytes = 40;

struct CamKey {
    std::array<u8, kMaxKeyBytes> bytes{};
    u8 length = 0;

    [[nodiscard]] static CamKey from_span(std::span<const u8> data) {
        CamKey key;
        key.length = static_cast<u8>(std::min(data.size(), kMaxKeyBytes));
        std::copy_n(data.begin(), key.length, key.bytes.begin());
        return key;
    }

    [[nodiscard]] std::span<const u8> view() const { return {bytes.data(), length}; }

    friend bool operator==(const CamKey& a, const CamKey& b) {
        return a.length == b.length &&
               std::equal(a.bytes.begin(), a.bytes.begin() + a.length, b.bytes.begin());
    }
};

struct CamKeyHash {
    std::size_t operator()(const CamKey& key) const {
        // FNV-1a over the valid bytes; only used for the software index.
        u64 h = 0xcbf29ce484222325ull;
        for (u8 i = 0; i < key.length; ++i) {
            h ^= key.bytes[i];
            h *= 0x100000001b3ull;
        }
        return static_cast<std::size_t>(h);
    }
};

/// Statistics the CAM exposes to the resource model and benches.
struct CamStats {
    u64 lookups = 0;
    u64 hits = 0;
    u64 inserts = 0;
    u64 insert_failures = 0;  ///< CAM full — the paper's capacity cliff.
    u64 erases = 0;
    u64 peak_occupancy = 0;
};

class Cam {
  public:
    /// `capacity` entries, each carrying a 64-bit payload (the flow ID /
    /// table index in the Flow LUT use case).
    explicit Cam(std::size_t capacity);

    /// Parallel search; returns the payload of the matching entry.
    [[nodiscard]] std::optional<u64> lookup(std::span<const u8> key);

    /// Search without disturbing statistics (used by invariant checks).
    [[nodiscard]] std::optional<u64> peek(std::span<const u8> key) const;

    /// Insert a (key, payload) pair into a free slot.
    /// kAlreadyExists if present (payload untouched), kCapacityExceeded when
    /// no free slot — the event the paper sizes the CAM to make negligible.
    Status insert(std::span<const u8> key, u64 payload);

    /// Remove an entry; kNotFound if absent.
    Status erase(std::span<const u8> key);

    /// Slot index occupied by `key`, if any (models the match-line encoder).
    [[nodiscard]] std::optional<u32> slot_of(std::span<const u8> key) const;

    /// Slot the next successful insert will occupy (the priority encoder's
    /// current pick). Lets FID_GEN derive the flow ID before inserting.
    [[nodiscard]] std::optional<u32> next_free_slot() const {
        if (free_list_.empty()) return std::nullopt;
        return free_list_.back();
    }

    [[nodiscard]] std::size_t size() const { return index_.size(); }
    [[nodiscard]] std::size_t capacity() const { return slots_.size(); }
    [[nodiscard]] bool full() const { return free_list_.empty(); }
    [[nodiscard]] const CamStats& stats() const { return stats_; }
    void reset_stats() { stats_ = CamStats{}; }

    /// Remove every entry.
    void clear();

  private:
    struct Slot {
        CamKey key;
        u64 payload = 0;
        bool valid = false;
    };

    std::vector<Slot> slots_;
    std::vector<u32> free_list_;  // LIFO of free slot indices.
    std::unordered_map<CamKey, u32, CamKeyHash> index_;  // software accelerator
    CamStats stats_;
};

}  // namespace flowcam::cam
