// Ternary CAM model: entries carry a care-mask per bit and a priority.
// The paper's conclusion notes the scheme "is scalable with respect to ...
// number of tuples for lookup"; wildcarded tuple matching (as in OpenFlow
// classifiers) is the natural extension and needs a TCAM at the collision
// stage. Provided for the classifier example and ablations.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "cam/cam.hpp"
#include "common/result.hpp"
#include "common/types.hpp"

namespace flowcam::cam {

struct TcamEntry {
    CamKey value;
    CamKey mask;       ///< bit set = care; cleared = wildcard.
    u32 priority = 0;  ///< higher wins among multiple matches.
    u64 payload = 0;
};

class Tcam {
  public:
    explicit Tcam(std::size_t capacity) : capacity_(capacity) {}

    /// Highest-priority entry matching `key` under each entry's mask.
    [[nodiscard]] std::optional<u64> lookup(std::span<const u8> key) const;

    /// Insert an entry. kCapacityExceeded when full. Duplicate (value, mask)
    /// pairs are rejected with kAlreadyExists.
    Status insert(const TcamEntry& entry);

    /// Remove the entry with exactly this (value, mask).
    Status erase(std::span<const u8> value, std::span<const u8> mask);

    [[nodiscard]] std::size_t size() const { return entries_.size(); }
    [[nodiscard]] std::size_t capacity() const { return capacity_; }

  private:
    static bool matches(const TcamEntry& entry, std::span<const u8> key);

    std::size_t capacity_;
    std::vector<TcamEntry> entries_;
};

}  // namespace flowcam::cam
