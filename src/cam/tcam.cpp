#include "cam/tcam.hpp"

#include <algorithm>

namespace flowcam::cam {

bool Tcam::matches(const TcamEntry& entry, std::span<const u8> key) {
    if (entry.value.length > key.size()) return false;
    for (u8 i = 0; i < entry.value.length; ++i) {
        const u8 mask = entry.mask.bytes[i];
        if ((key[i] & mask) != (entry.value.bytes[i] & mask)) return false;
    }
    return true;
}

std::optional<u64> Tcam::lookup(std::span<const u8> key) const {
    const TcamEntry* best = nullptr;
    for (const auto& entry : entries_) {
        if (matches(entry, key) && (best == nullptr || entry.priority > best->priority)) {
            best = &entry;
        }
    }
    if (best == nullptr) return std::nullopt;
    return best->payload;
}

Status Tcam::insert(const TcamEntry& entry) {
    if (entries_.size() >= capacity_) {
        return Status(StatusCode::kCapacityExceeded, "TCAM full");
    }
    const auto duplicate = std::any_of(entries_.begin(), entries_.end(), [&](const TcamEntry& e) {
        return e.value == entry.value && e.mask == entry.mask;
    });
    if (duplicate) return Status(StatusCode::kAlreadyExists);
    entries_.push_back(entry);
    return Status::ok();
}

Status Tcam::erase(std::span<const u8> value, std::span<const u8> mask) {
    const CamKey v = CamKey::from_span(value);
    const CamKey m = CamKey::from_span(mask);
    const auto it = std::find_if(entries_.begin(), entries_.end(), [&](const TcamEntry& e) {
        return e.value == v && e.mask == m;
    });
    if (it == entries_.end()) return Status(StatusCode::kNotFound);
    entries_.erase(it);
    return Status::ok();
}

}  // namespace flowcam::cam
