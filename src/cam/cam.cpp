#include "cam/cam.hpp"

namespace flowcam::cam {

Cam::Cam(std::size_t capacity) : slots_(capacity) {
    free_list_.reserve(capacity);
    // LIFO order with the lowest slot on top: hardware priority encoders
    // allocate the lowest free match line first.
    for (std::size_t i = capacity; i > 0; --i) {
        free_list_.push_back(static_cast<u32>(i - 1));
    }
    index_.reserve(capacity * 2);
}

std::optional<u64> Cam::lookup(std::span<const u8> key) {
    ++stats_.lookups;
    auto result = peek(key);
    if (result) ++stats_.hits;
    return result;
}

std::optional<u64> Cam::peek(std::span<const u8> key) const {
    const auto it = index_.find(CamKey::from_span(key));
    if (it == index_.end()) return std::nullopt;
    return slots_[it->second].payload;
}

Status Cam::insert(std::span<const u8> key, u64 payload) {
    ++stats_.inserts;
    const CamKey cam_key = CamKey::from_span(key);
    if (index_.contains(cam_key)) return Status(StatusCode::kAlreadyExists);
    if (free_list_.empty()) {
        ++stats_.insert_failures;
        return Status(StatusCode::kCapacityExceeded, "CAM full");
    }
    const u32 slot = free_list_.back();
    free_list_.pop_back();
    slots_[slot] = Slot{cam_key, payload, true};
    index_.emplace(cam_key, slot);
    stats_.peak_occupancy = std::max<u64>(stats_.peak_occupancy, index_.size());
    return Status::ok();
}

Status Cam::erase(std::span<const u8> key) {
    const auto it = index_.find(CamKey::from_span(key));
    if (it == index_.end()) return Status(StatusCode::kNotFound);
    slots_[it->second].valid = false;
    free_list_.push_back(it->second);
    index_.erase(it);
    ++stats_.erases;
    return Status::ok();
}

std::optional<u32> Cam::slot_of(std::span<const u8> key) const {
    const auto it = index_.find(CamKey::from_span(key));
    if (it == index_.end()) return std::nullopt;
    return it->second;
}

void Cam::clear() {
    const std::size_t capacity = slots_.size();
    slots_.assign(capacity, Slot{});
    free_list_.clear();
    for (std::size_t i = capacity; i > 0; --i) {
        free_list_.push_back(static_cast<u32>(i - 1));
    }
    index_.clear();
}

}  // namespace flowcam::cam
