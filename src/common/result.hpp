// Minimal status/expected vocabulary. We avoid exceptions on hot simulation
// paths (CppCoreGuidelines E.x: use exceptions for exceptional conditions;
// a lookup miss or a full CAM is an expected outcome, not an error).
#pragma once

#include <optional>
#include <string>
#include <utility>
#include <variant>

namespace flowcam {

enum class StatusCode {
    kOk,
    kNotFound,
    kAlreadyExists,
    kCapacityExceeded,
    kInvalidArgument,
    kFailedPrecondition,
    kUnavailable,
};

[[nodiscard]] constexpr const char* to_string(StatusCode code) {
    switch (code) {
        case StatusCode::kOk: return "ok";
        case StatusCode::kNotFound: return "not-found";
        case StatusCode::kAlreadyExists: return "already-exists";
        case StatusCode::kCapacityExceeded: return "capacity-exceeded";
        case StatusCode::kInvalidArgument: return "invalid-argument";
        case StatusCode::kFailedPrecondition: return "failed-precondition";
        case StatusCode::kUnavailable: return "unavailable";
    }
    return "unknown";
}

class Status {
  public:
    Status() = default;
    explicit Status(StatusCode code, std::string message = {})
        : code_(code), message_(std::move(message)) {}

    [[nodiscard]] static Status ok() { return Status{}; }

    [[nodiscard]] bool is_ok() const { return code_ == StatusCode::kOk; }
    [[nodiscard]] StatusCode code() const { return code_; }
    [[nodiscard]] const std::string& message() const { return message_; }

    [[nodiscard]] std::string to_string() const {
        std::string out = flowcam::to_string(code_);
        if (!message_.empty()) {
            out += ": ";
            out += message_;
        }
        return out;
    }

  private:
    StatusCode code_ = StatusCode::kOk;
    std::string message_;
};

/// Expected-style result: either a value or a Status describing why not.
template <typename T>
class Result {
  public:
    Result(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
    Result(Status status) : value_(std::move(status)) {}  // NOLINT

    [[nodiscard]] bool has_value() const { return std::holds_alternative<T>(value_); }
    explicit operator bool() const { return has_value(); }

    [[nodiscard]] const T& value() const& { return std::get<T>(value_); }
    [[nodiscard]] T& value() & { return std::get<T>(value_); }
    [[nodiscard]] T&& value() && { return std::get<T>(std::move(value_)); }

    [[nodiscard]] const Status& status() const { return std::get<Status>(value_); }

    [[nodiscard]] T value_or(T fallback) const {
        return has_value() ? value() : std::move(fallback);
    }

  private:
    std::variant<T, Status> value_;
};

}  // namespace flowcam
