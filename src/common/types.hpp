// Fundamental fixed-width aliases and small value types shared by every
// flowcam module.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>

namespace flowcam {

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i8 = std::int8_t;
using i16 = std::int16_t;
using i32 = std::int32_t;
using i64 = std::int64_t;

/// Simulation time in clock cycles of the owning clock domain.
using Cycle = u64;

/// Sentinel for "no cycle / not scheduled".
inline constexpr Cycle kNeverCycle = std::numeric_limits<Cycle>::max();

/// Flow identifier handed out by FID_GEN. 0 is reserved as invalid.
using FlowId = u64;
inline constexpr FlowId kInvalidFlowId = 0;

/// Index of a location inside one of the lookup structures.
struct TableIndex {
    enum class Where : u8 { kNone, kCam, kMem1, kMem2 };
    Where where = Where::kNone;
    u64 slot = 0;  ///< CAM entry index, or bucket*K+way for DDR memories.

    [[nodiscard]] constexpr bool valid() const { return where != Where::kNone; }
    friend constexpr bool operator==(const TableIndex&, const TableIndex&) = default;
};

}  // namespace flowcam
