// Small bit-manipulation helpers used by the hash and DRAM address-mapping
// code. All constexpr so the compiler can fold address math.
#pragma once

#include <bit>
#include <cstdint>

#include "common/types.hpp"

namespace flowcam {

/// True iff x is a power of two (0 is not).
[[nodiscard]] constexpr bool is_pow2(u64 x) { return x != 0 && (x & (x - 1)) == 0; }

/// log2 of a power of two. Precondition: is_pow2(x).
[[nodiscard]] constexpr u32 log2_pow2(u64 x) {
    return static_cast<u32>(std::countr_zero(x));
}

/// Smallest power of two >= x (x <= 2^63).
[[nodiscard]] constexpr u64 ceil_pow2(u64 x) {
    return x <= 1 ? 1 : u64{1} << (64 - std::countl_zero(x - 1));
}

/// Ceiling division for unsigned integers.
[[nodiscard]] constexpr u64 ceil_div(u64 num, u64 den) { return (num + den - 1) / den; }

/// Extract bit field [lo, lo+width) from x.
[[nodiscard]] constexpr u64 bits(u64 x, u32 lo, u32 width) {
    return (x >> lo) & ((width >= 64) ? ~u64{0} : ((u64{1} << width) - 1));
}

/// Fold a 64-bit value down to `width` bits by XOR-ing 64/width slices.
/// This mimics how hardware hash blocks reduce wide digests to index widths.
[[nodiscard]] constexpr u64 xor_fold(u64 x, u32 width) {
    if (width >= 64) return x;
    if (width == 0) return 0;  // a zero-width index has one possible value
    u64 folded = 0;
    while (x != 0) {
        folded ^= x & ((u64{1} << width) - 1);
        x >>= width;
    }
    return folded;
}

/// Parity (XOR-reduction) of x — one AND-XOR tree in hardware.
[[nodiscard]] constexpr u32 parity(u64 x) { return std::popcount(x) & 1u; }

}  // namespace flowcam
