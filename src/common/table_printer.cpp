#include "common/table_printer.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace flowcam {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::add_row(std::vector<std::string> cells) {
    cells.resize(headers_.size());
    rows_.push_back(std::move(cells));
}

void TablePrinter::print(std::ostream& os, const std::string& title) const {
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            widths[c] = std::max(widths[c], row[c].size());
        }
    }

    const auto render_line = [&](const std::vector<std::string>& cells) {
        os << "|";
        for (std::size_t c = 0; c < headers_.size(); ++c) {
            const std::string& cell = c < cells.size() ? cells[c] : std::string{};
            os << ' ' << std::left << std::setw(static_cast<int>(widths[c])) << cell << " |";
        }
        os << '\n';
    };

    std::size_t total = 1;
    for (const auto width : widths) total += width + 3;

    if (!title.empty()) os << title << '\n';
    os << std::string(total, '-') << '\n';
    render_line(headers_);
    os << std::string(total, '-') << '\n';
    for (const auto& row : rows_) render_line(row);
    os << std::string(total, '-') << '\n';
}

std::string TablePrinter::fixed(double value, int decimals) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(decimals) << value;
    return os.str();
}

std::string TablePrinter::percent(double fraction, int decimals) {
    return fixed(fraction * 100.0, decimals) + "%";
}

}  // namespace flowcam
