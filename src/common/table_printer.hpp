// Console table renderer used by the benchmark harness to print rows in the
// same shape as the paper's tables and figure series.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace flowcam {

class TablePrinter {
  public:
    explicit TablePrinter(std::vector<std::string> headers);

    /// Append one row; cells beyond the header count are dropped, missing
    /// cells render empty.
    void add_row(std::vector<std::string> cells);

    /// Render with aligned columns, a header rule and an optional title.
    void print(std::ostream& os, const std::string& title = {}) const;

    [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

    /// Numeric formatting helpers for bench output.
    static std::string fixed(double value, int decimals);
    static std::string percent(double fraction, int decimals);

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

}  // namespace flowcam
