// Deterministic, seedable PRNG used everywhere in the simulator so that every
// experiment is reproducible from its configuration alone.
#pragma once

#include <cstdint>

#include "common/types.hpp"

namespace flowcam {

/// xoshiro256** — fast, high-quality, 64-bit state-of-the-art generator.
/// Satisfies std::uniform_random_bit_generator so it plugs into <random>.
class Xoshiro256 {
  public:
    using result_type = u64;

    explicit Xoshiro256(u64 seed = 0x9e3779b97f4a7c15ull) { reseed(seed); }

    /// SplitMix64 seeding per the reference implementation: expands one 64-bit
    /// seed into 256 bits of well-mixed state.
    void reseed(u64 seed) {
        for (auto& word : state_) {
            seed += 0x9e3779b97f4a7c15ull;
            u64 z = seed;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
            word = z ^ (z >> 31);
        }
    }

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~0ull; }

    result_type operator()() {
        const u64 result = rotl(state_[1] * 5, 7) * 9;
        const u64 t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /// Uniform integer in [0, bound) without modulo bias (Lemire's method).
    u64 bounded(u64 bound) {
        if (bound == 0) return 0;
        const u64 threshold = (0 - bound) % bound;
        for (;;) {
            const u64 sample = (*this)();
            if (sample >= threshold) return sample % bound;
        }
    }

    /// Uniform double in [0, 1).
    double uniform() { return static_cast<double>((*this)() >> 11) * 0x1.0p-53; }

    /// Bernoulli trial with probability p.
    bool chance(double p) { return uniform() < p; }

  private:
    static constexpr u64 rotl(u64 x, int k) { return (x << k) | (x >> (64 - k)); }
    u64 state_[4] = {};
};

}  // namespace flowcam
