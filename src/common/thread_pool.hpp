// A small fixed-size worker pool for embarrassingly parallel sweeps.
//
// The scenario benches run one independent engine + Flow LUT per scenario;
// nothing is shared between tasks, so the pool only needs submit/wait — no
// futures, no task graph. parallel_for_indexed() is the common pattern:
// each task writes its result into a caller-owned slot by index, so results
// come back in deterministic order no matter how execution interleaved
// (byte-identical output to a serial run is asserted by workload tests).
#pragma once

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace flowcam::common {

class ThreadPool {
  public:
    /// `threads` = 0 picks the hardware concurrency.
    explicit ThreadPool(std::size_t threads = 0) {
        if (threads == 0) threads = default_jobs();
        workers_.reserve(threads);
        for (std::size_t i = 0; i < threads; ++i) {
            workers_.emplace_back([this] { worker_loop(); });
        }
    }

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    ~ThreadPool() {
        {
            std::unique_lock lock(mutex_);
            stopping_ = true;
        }
        wake_workers_.notify_all();
        for (std::thread& worker : workers_) worker.join();
    }

    [[nodiscard]] std::size_t size() const { return workers_.size(); }

    [[nodiscard]] static std::size_t default_jobs() {
        return std::max<std::size_t>(1, std::thread::hardware_concurrency());
    }

    /// Enqueue one task. Tasks must not throw (the simulator reports errors
    /// through Status values, not exceptions).
    void submit(std::function<void()> task) {
        {
            std::unique_lock lock(mutex_);
            queue_.push_back(std::move(task));
            ++outstanding_;
        }
        wake_workers_.notify_one();
    }

    /// Block until every submitted task has finished.
    void wait_idle() {
        std::unique_lock lock(mutex_);
        idle_.wait(lock, [this] { return outstanding_ == 0; });
    }

    /// Run `fn(index)` for index in [0, count) across up to `jobs` workers
    /// of a transient pool; jobs <= 1 runs inline (no threads at all, so a
    /// serial sweep stays single-threaded deterministic by construction).
    template <typename Fn>
    static void parallel_for_indexed(std::size_t count, std::size_t jobs, Fn&& fn) {
        if (jobs <= 1 || count <= 1) {
            for (std::size_t i = 0; i < count; ++i) fn(i);
            return;
        }
        ThreadPool pool(std::min(jobs, count));
        for (std::size_t i = 0; i < count; ++i) {
            pool.submit([&fn, i] { fn(i); });
        }
        pool.wait_idle();
    }

  private:
    void worker_loop() {
        while (true) {
            std::function<void()> task;
            {
                std::unique_lock lock(mutex_);
                wake_workers_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
                if (queue_.empty()) return;  // stopping and drained.
                task = std::move(queue_.front());
                queue_.pop_front();
            }
            task();
            {
                std::unique_lock lock(mutex_);
                if (--outstanding_ == 0) idle_.notify_all();
            }
        }
    }

    std::vector<std::thread> workers_;
    std::deque<std::function<void()>> queue_;
    std::mutex mutex_;
    std::condition_variable wake_workers_;
    std::condition_variable idle_;
    std::size_t outstanding_ = 0;
    bool stopping_ = false;
};

}  // namespace flowcam::common
