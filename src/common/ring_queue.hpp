// Growable ring-buffer FIFO. std::deque allocates/frees a chunk every few
// pushes when elements are large (descriptors, completions, lookup jobs are
// all >100 B), which put steady-state heap traffic on the simulator's
// per-packet path. RingQueue keeps one power-of-2 slab that only grows to
// the high-water mark — after warmup, push/pop never touch the allocator
// (verified by bench_hotpath's allocation counter).
#pragma once

#include <cassert>
#include <cstddef>
#include <utility>
#include <vector>

namespace flowcam::common {

template <typename T>
class RingQueue {
  public:
    explicit RingQueue(std::size_t initial_capacity = 8) {
        std::size_t capacity = 2;
        while (capacity < initial_capacity) capacity *= 2;
        slots_.resize(capacity);
    }

    [[nodiscard]] bool empty() const { return count_ == 0; }
    [[nodiscard]] std::size_t size() const { return count_; }

    [[nodiscard]] T& front() {
        assert(count_ > 0);
        return slots_[head_];
    }
    [[nodiscard]] const T& front() const {
        assert(count_ > 0);
        return slots_[head_];
    }

    /// Element `i` positions behind the front (at(0) == front()). Lets the
    /// batched dispatch path peek the next queued descriptor for prefetch
    /// without popping it.
    [[nodiscard]] const T& at(std::size_t i) const {
        assert(i < count_);
        return slots_[(head_ + i) & (slots_.size() - 1)];
    }

    void push_back(T value) {
        if (count_ == slots_.size()) grow();
        slots_[(head_ + count_) & (slots_.size() - 1)] = std::move(value);
        ++count_;
    }

    template <typename... Args>
    void emplace_back(Args&&... args) {
        push_back(T(std::forward<Args>(args)...));
    }

    /// Remove and return the front element (moved out; its slot keeps the
    /// moved-from shell so its heap capacity is reused by a later push).
    T pop_front() {
        assert(count_ > 0);
        T value = std::move(slots_[head_]);
        head_ = (head_ + 1) & (slots_.size() - 1);
        --count_;
        return value;
    }

    void clear() {
        head_ = 0;
        count_ = 0;
    }

  private:
    void grow() {
        std::vector<T> bigger(slots_.size() * 2);
        for (std::size_t i = 0; i < count_; ++i) {
            bigger[i] = std::move(slots_[(head_ + i) & (slots_.size() - 1)]);
        }
        slots_ = std::move(bigger);
        head_ = 0;
    }

    std::vector<T> slots_;
    std::size_t head_ = 0;
    std::size_t count_ = 0;
};

}  // namespace flowcam::common
