// OpenMap: the one flat open-addressed hash map behind core::FlowKeyMap and
// common::FlatU64Map (linear probing, power-of-2 capacity, tombstone deletion
// with an in-place flush when dirt builds up).
//
// Storage is flat arrays reused across insert/erase cycles, so a bounded
// working set — the Flow LUT's per-flow interlock, the Update block's pending
// filters, outstanding DDR requests — runs allocation-free at steady state,
// unlike node-based std::unordered_map (asserted by bench_hotpath's
// allocation counter). Parameterized over key + hasher: the hasher must
// return a well-mixed 64-bit value, because its low bits index the table
// directly (no secondary mixing here).
#pragma once

#include <cassert>
#include <cstddef>
#include <utility>
#include <vector>

#include "common/types.hpp"

namespace flowcam::common {

template <typename K, typename V, typename Hasher>
class OpenMap {
  public:
    explicit OpenMap(std::size_t initial_capacity = 64) { rehash(initial_capacity); }

    [[nodiscard]] std::size_t size() const { return size_; }
    [[nodiscard]] bool empty() const { return size_ == 0; }

    /// Value for `key` or nullptr. Never allocates. Pointers are invalidated
    /// by any insert.
    [[nodiscard]] V* find(const K& key) {
        const std::size_t slot = find_slot(key);
        return slot == kNoSlot ? nullptr : &slots_[slot].value;
    }
    [[nodiscard]] const V* find(const K& key) const {
        const std::size_t slot = find_slot(key);
        return slot == kNoSlot ? nullptr : &slots_[slot].value;
    }

    /// Value for `key`, default-constructed and inserted if absent.
    /// Allocates only when the table grows (amortized; never at steady state).
    V& operator[](const K& key) {
        if ((size_ + tombstones_ + 1) * 4 >= state_.size() * 3) {
            // Grow only under live-entry pressure; erase/insert churn just
            // flushes tombstones at the same capacity (reusing the arrays).
            rehash((size_ + 1) * 4 >= state_.size() * 2 ? state_.size() * 2 : state_.size());
        }
        std::size_t index = Hasher{}(key)&mask_;
        std::size_t first_tombstone = kNoSlot;
        while (true) {
            const u8 state = state_[index];
            if (state == kEmpty) {
                const std::size_t target = first_tombstone != kNoSlot ? first_tombstone : index;
                if (first_tombstone != kNoSlot) --tombstones_;
                state_[target] = kFull;
                slots_[target].key = key;
                slots_[target].value = V{};
                ++size_;
                return slots_[target].value;
            }
            if (state == kTombstone) {
                if (first_tombstone == kNoSlot) first_tombstone = index;
            } else if (slots_[index].key == key) {
                return slots_[index].value;
            }
            index = (index + 1) & mask_;
        }
    }

    /// Move the value out and erase; asserts presence (the Flow LUT only
    /// pops responses it issued).
    V take(const K& key) {
        const std::size_t slot = find_slot(key);
        assert(slot != kNoSlot);
        V value = std::move(slots_[slot].value);
        slots_[slot].value = V{};
        state_[slot] = kTombstone;
        --size_;
        ++tombstones_;
        return value;
    }

    bool erase(const K& key) {
        const std::size_t slot = find_slot(key);
        if (slot == kNoSlot) return false;
        slots_[slot].value = V{};
        state_[slot] = kTombstone;
        --size_;
        ++tombstones_;
        return true;
    }

    void reserve(std::size_t entries) {
        std::size_t capacity = state_.size();
        while (entries * 4 >= capacity * 3) capacity *= 2;
        if (capacity != state_.size()) rehash(capacity);
    }

  private:
    static constexpr std::size_t kNoSlot = static_cast<std::size_t>(-1);
    static constexpr u8 kEmpty = 0, kFull = 1, kTombstone = 2;

    struct Slot {
        K key;
        V value;
    };

    [[nodiscard]] std::size_t find_slot(const K& key) const {
        std::size_t index = Hasher{}(key)&mask_;
        while (true) {
            const u8 state = state_[index];
            if (state == kEmpty) return kNoSlot;
            if (state == kFull && slots_[index].key == key) return index;
            index = (index + 1) & mask_;
        }
    }

    void rehash(std::size_t new_capacity) {
        assert((new_capacity & (new_capacity - 1)) == 0 && new_capacity > 0);
        // Swap into persistent scratch arrays: a same-capacity rehash (the
        // steady-state tombstone flush) then reuses their storage and
        // performs no allocation at all.
        std::swap(state_, scratch_state_);
        std::swap(slots_, scratch_slots_);
        state_.assign(new_capacity, kEmpty);
        slots_.assign(new_capacity, Slot{});
        mask_ = new_capacity - 1;
        size_ = 0;
        tombstones_ = 0;
        for (std::size_t i = 0; i < scratch_state_.size(); ++i) {
            if (scratch_state_[i] != kFull) continue;
            (*this)[scratch_slots_[i].key] = std::move(scratch_slots_[i].value);
        }
    }

    std::vector<u8> state_, scratch_state_;
    std::vector<Slot> slots_, scratch_slots_;
    std::size_t mask_ = 0;
    std::size_t size_ = 0;
    std::size_t tombstones_ = 0;
};

}  // namespace flowcam::common
