// Flat open-addressed map with u64 keys (linear probing, power-of-2
// capacity, tombstone deletion). Storage is two flat arrays reused across
// insert/erase cycles, so a bounded working set — like the Flow LUT's
// outstanding DDR requests — runs allocation-free at steady state, unlike
// node-based std::unordered_map.
#pragma once

#include <cassert>
#include <cstddef>
#include <vector>

#include "common/types.hpp"

namespace flowcam::common {

template <typename V>
class FlatU64Map {
  public:
    explicit FlatU64Map(std::size_t initial_capacity = 64) { rehash(initial_capacity); }

    [[nodiscard]] std::size_t size() const { return size_; }
    [[nodiscard]] bool empty() const { return size_ == 0; }

    /// Value for `key` or nullptr. Never allocates. Pointers are
    /// invalidated by any insert.
    [[nodiscard]] V* find(u64 key) {
        const std::size_t slot = find_slot(key);
        return slot == kNoSlot ? nullptr : &values_[slot];
    }

    /// Insert `key` -> default V, or return the existing mapping.
    V& operator[](u64 key) {
        if ((size_ + tombstones_ + 1) * 4 >= state_.size() * 3) {
            // Grow only under live-entry pressure; erase/insert churn just
            // flushes tombstones in place (no allocation once warmed up:
            // rehash() reuses the spare arrays).
            rehash((size_ + 1) * 4 >= state_.size() * 2 ? state_.size() * 2 : state_.size());
        }
        std::size_t index = mix(key) & mask_;
        std::size_t first_tombstone = kNoSlot;
        while (true) {
            const u8 state = state_[index];
            if (state == kEmpty) {
                const std::size_t target = first_tombstone != kNoSlot ? first_tombstone : index;
                if (first_tombstone != kNoSlot) --tombstones_;
                state_[target] = kFull;
                keys_[target] = key;
                values_[target] = V{};
                ++size_;
                return values_[target];
            }
            if (state == kTombstone) {
                if (first_tombstone == kNoSlot) first_tombstone = index;
            } else if (keys_[index] == key) {
                return values_[index];
            }
            index = (index + 1) & mask_;
        }
    }

    /// Move the value out and erase; asserts presence (the Flow LUT only
    /// pops responses it issued).
    V take(u64 key) {
        const std::size_t slot = find_slot(key);
        assert(slot != kNoSlot);
        V value = std::move(values_[slot]);
        values_[slot] = V{};
        state_[slot] = kTombstone;
        --size_;
        ++tombstones_;
        return value;
    }

    bool erase(u64 key) {
        const std::size_t slot = find_slot(key);
        if (slot == kNoSlot) return false;
        values_[slot] = V{};
        state_[slot] = kTombstone;
        --size_;
        ++tombstones_;
        return true;
    }

  private:
    static constexpr std::size_t kNoSlot = static_cast<std::size_t>(-1);
    static constexpr u8 kEmpty = 0, kFull = 1, kTombstone = 2;

    /// splitmix-style finalizer: sequential request ids must not probe into
    /// one long run.
    [[nodiscard]] static u64 mix(u64 x) {
        x ^= x >> 30;
        x *= 0xbf58476d1ce4e5b9ull;
        x ^= x >> 27;
        x *= 0x94d049bb133111ebull;
        x ^= x >> 31;
        return x;
    }

    [[nodiscard]] std::size_t find_slot(u64 key) const {
        std::size_t index = mix(key) & mask_;
        while (true) {
            const u8 state = state_[index];
            if (state == kEmpty) return kNoSlot;
            if (state == kFull && keys_[index] == key) return index;
            index = (index + 1) & mask_;
        }
    }

    void rehash(std::size_t new_capacity) {
        assert((new_capacity & (new_capacity - 1)) == 0 && new_capacity > 0);
        // Swap into persistent scratch arrays: a same-capacity rehash (the
        // steady-state tombstone flush) then reuses their storage and
        // performs no allocation at all.
        std::swap(state_, scratch_state_);
        std::swap(keys_, scratch_keys_);
        std::swap(values_, scratch_values_);
        state_.assign(new_capacity, kEmpty);
        keys_.assign(new_capacity, 0);
        values_.assign(new_capacity, V{});
        mask_ = new_capacity - 1;
        size_ = 0;
        tombstones_ = 0;
        for (std::size_t i = 0; i < scratch_state_.size(); ++i) {
            if (scratch_state_[i] != kFull) continue;
            (*this)[scratch_keys_[i]] = std::move(scratch_values_[i]);
        }
    }

    std::vector<u8> state_, scratch_state_;
    std::vector<u64> keys_, scratch_keys_;
    std::vector<V> values_, scratch_values_;
    std::size_t mask_ = 0;
    std::size_t size_ = 0;
    std::size_t tombstones_ = 0;
};

}  // namespace flowcam::common
