// FlatU64Map: the u64-keyed instance of common::OpenMap (see open_map.hpp
// for the open-addressing scheme and the steady-state no-allocation
// guarantee). Used for bounded id-keyed working sets like the Flow LUT's
// outstanding DDR requests.
#pragma once

#include "common/open_map.hpp"
#include "common/types.hpp"

namespace flowcam::common {

/// splitmix-style finalizer: sequential request ids must not probe into one
/// long run (OpenMap uses the hash's low bits directly as table indices).
struct U64MixHash {
    [[nodiscard]] u64 operator()(u64 x) const {
        x ^= x >> 30;
        x *= 0xbf58476d1ce4e5b9ull;
        x ^= x >> 27;
        x *= 0x94d049bb133111ebull;
        x ^= x >> 31;
        return x;
    }
};

template <typename V>
using FlatU64Map = OpenMap<u64, V, U64MixHash>;

}  // namespace flowcam::common
