// Scenario-driven workload engine: the Scenario interface.
//
// The seed could only exercise the Flow LUT with the calibrated Pitman–Yor
// background trace (net/trace.hpp). A Scenario turns that one trace into a
// catalogue: each concrete scenario overlays adversarial or phase traffic
// (SYN floods, port scans, heavy hitters, flash crowds, churn waves) on the
// calibrated background, emitting the same net::PacketRecord stream the rest
// of the system consumes. Everything is deterministic under a fixed seed so
// a scenario name + a ScenarioConfig fully reproduces an experiment.
#pragma once

#include <algorithm>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "net/trace.hpp"

namespace flowcam::workload {

/// Overlay packets carry flow indices at or above this base so tests and
/// metrics can separate ground-truth attack traffic from the background
/// without guessing from tuples (the background's indices grow from 0 and
/// cannot plausibly reach 2^40 packets in a simulation).
inline constexpr u64 kOverlayFlowBase = u64{1} << 40;

/// In a ComposedScenario each overlay track gets its own disjoint flow-index
/// range: track i remaps its child's indices into
/// [kOverlayFlowBase + i*kOverlayTrackStride, ... + (i+1)*kOverlayTrackStride)
/// so two overlays that both count from kOverlayFlowBase (they all do) keep
/// separable ground truth. 2^32 flows per track is far beyond any simulated
/// run.
inline constexpr u64 kOverlayTrackStride = u64{1} << 32;

/// Which composed track an overlay flow index belongs to (0 for overlay
/// indices from an un-composed scenario).
[[nodiscard]] constexpr u64 overlay_track_of(u64 flow_index) {
    return flow_index < kOverlayFlowBase ? 0 : (flow_index - kOverlayFlowBase) / kOverlayTrackStride;
}

/// Nominal run length used to resolve fractional schedule positions when the
/// caller has not pinned ScenarioConfig::horizon_packets (matches the
/// ScenarioRunner's default packet budget; the runner overrides the horizon
/// with its actual budget).
inline constexpr u64 kDefaultHorizonPackets = 20'000;

/// Piecewise-linear intensity over normalized scenario time t in [0,1]:
/// attack_fraction(t) ramps and pulses. Empty = "no schedule" (callers fall
/// back to the constant ScenarioConfig::attack_fraction). Knots sharing the
/// same t encode a step (the later knot wins at and after t).
struct IntensitySchedule {
    struct Knot {
        double t = 0.0;      ///< normalized time in [0,1].
        double value = 0.0;  ///< attack fraction at t.
    };
    std::vector<Knot> knots;  ///< sorted by t (stable for equal t).

    [[nodiscard]] bool empty() const { return knots.empty(); }

    /// Linear interpolation between the surrounding knots; clamped to the
    /// first/last value outside the knot span. Meaningless on an empty
    /// schedule (returns 0).
    [[nodiscard]] double value_at(double t) const {
        if (knots.empty()) return 0.0;
        if (t <= knots.front().t) return knots.front().value;
        if (t >= knots.back().t) return knots.back().value;
        for (std::size_t i = 1; i < knots.size(); ++i) {
            if (t >= knots[i].t) continue;
            const Knot& a = knots[i - 1];
            const Knot& b = knots[i];
            if (b.t <= a.t) return b.value;  // step edge: later knot wins.
            const double alpha = (t - a.t) / (b.t - a.t);
            return a.value + alpha * (b.value - a.value);
        }
        return knots.back().value;
    }

    /// Linear ramp from `from` at t=0 to `to` at t=1.
    [[nodiscard]] static IntensitySchedule ramp(double from, double to) {
        return IntensitySchedule{{{0.0, from}, {1.0, to}}};
    }

    /// `count` square pulses alternating hi/lo, starting hi at t=0 (each
    /// period is an equal hi plateau then lo plateau; steps via duplicate-t
    /// knots).
    [[nodiscard]] static IntensitySchedule pulse(double lo, double hi, u64 count) {
        IntensitySchedule schedule;
        const u64 pulses = std::max<u64>(count, 1);
        const double period = 1.0 / static_cast<double>(pulses);
        for (u64 i = 0; i < pulses; ++i) {
            const double start = static_cast<double>(i) * period;
            const double mid = start + period / 2.0;
            schedule.knots.push_back({start, hi});
            schedule.knots.push_back({mid, hi});
            schedule.knots.push_back({mid, lo});
            schedule.knots.push_back({start + period, lo});
        }
        return schedule;
    }
};

/// The one schedule-time normalization every overlay gate shares (standalone
/// OverlayScenario and ComposedScenario tracks): the schedule's value at
/// stream position `emitted`, with t running 0 at `onset` to 1 at `ramp_end`
/// (clamped both sides; a degenerate window evaluates the end value), or
/// `fallback` when no schedule is set.
[[nodiscard]] inline double scheduled_fraction(const IntensitySchedule& schedule, u64 emitted,
                                               u64 onset, u64 ramp_end, double fallback) {
    if (schedule.empty()) return fallback;
    if (ramp_end <= onset) return schedule.value_at(1.0);
    const double t = emitted <= onset ? 0.0
                                      : static_cast<double>(emitted - onset) /
                                            static_cast<double>(ramp_end - onset);
    return schedule.value_at(t < 1.0 ? t : 1.0);
}

/// One knob set shared by every scenario; fields are interpreted per
/// scenario (documented on each generator in scenarios.hpp). Unused knobs
/// are ignored, so a single config can drive the whole catalogue.
struct ScenarioConfig {
    u64 seed = 2014;

    /// Calibrated Pitman–Yor background (its seed field is overridden by
    /// `seed` so one value pins the entire stream).
    net::TraceConfig background;

    /// Fraction of post-onset packets drawn from the overlay.
    double attack_fraction = 0.5;
    /// Background-only warmup before the overlay switches on — models the
    /// "sudden" part of sudden events and lets tables warm up first.
    u64 onset_packets = 2000;

    /// Time-varying attack_fraction(t): when non-empty it overrides the
    /// constant `attack_fraction`, with t running linearly from 0 at onset
    /// to 1 at `horizon_packets` (clamped beyond). Empty = constant.
    IntensitySchedule intensity;
    /// Nominal run length in packets that normalized schedule time (and the
    /// composed grammar's fractional onset/offset) is resolved against.
    /// 0 = unset: the ScenarioRunner fills in its packet budget; direct
    /// constructions fall back to kDefaultHorizonPackets.
    u64 horizon_packets = 0;

    /// TraceReplayScenario: path of the CSV/JSONL packet trace to replay
    /// (see workload/replay.hpp for the format).
    std::string trace_path;

    /// Scenario-specific population size: flash-crowd client pool, churn
    /// per-wave flow population, port-scan sweep width.
    u64 pool_size = 4096;
    /// Churn: overlay packets per birth/death wave (whole population is
    /// replaced at each wave boundary).
    u64 wave_packets = 2048;
    /// Heavy hitter: number of elephant flows and the Zipf skew across them.
    u64 elephant_count = 64;
    double zipf_exponent = 1.2;
};

/// The horizon schedules and fractional windows resolve against: the
/// configured value, or kDefaultHorizonPackets when the caller left it 0.
[[nodiscard]] inline u64 effective_horizon(const ScenarioConfig& config) {
    return config.horizon_packets != 0 ? config.horizon_packets : kDefaultHorizonPackets;
}

/// A deterministic, endless packet stream. next() is cheap (amortized O(1))
/// and timestamps strictly increase, matching TraceGenerator's contract.
class Scenario {
  public:
    virtual ~Scenario() = default;

    [[nodiscard]] virtual std::string name() const = 0;
    [[nodiscard]] virtual std::string description() const = 0;

    virtual net::PacketRecord next() = 0;
};

}  // namespace flowcam::workload
