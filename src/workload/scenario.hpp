// Scenario-driven workload engine: the Scenario interface.
//
// The seed could only exercise the Flow LUT with the calibrated Pitman–Yor
// background trace (net/trace.hpp). A Scenario turns that one trace into a
// catalogue: each concrete scenario overlays adversarial or phase traffic
// (SYN floods, port scans, heavy hitters, flash crowds, churn waves) on the
// calibrated background, emitting the same net::PacketRecord stream the rest
// of the system consumes. Everything is deterministic under a fixed seed so
// a scenario name + a ScenarioConfig fully reproduces an experiment.
#pragma once

#include <string>

#include "common/types.hpp"
#include "net/trace.hpp"

namespace flowcam::workload {

/// Overlay packets carry flow indices at or above this base so tests and
/// metrics can separate ground-truth attack traffic from the background
/// without guessing from tuples (the background's indices grow from 0 and
/// cannot plausibly reach 2^40 packets in a simulation).
inline constexpr u64 kOverlayFlowBase = u64{1} << 40;

/// One knob set shared by every scenario; fields are interpreted per
/// scenario (documented on each generator in scenarios.hpp). Unused knobs
/// are ignored, so a single config can drive the whole catalogue.
struct ScenarioConfig {
    u64 seed = 2014;

    /// Calibrated Pitman–Yor background (its seed field is overridden by
    /// `seed` so one value pins the entire stream).
    net::TraceConfig background;

    /// Fraction of post-onset packets drawn from the overlay.
    double attack_fraction = 0.5;
    /// Background-only warmup before the overlay switches on — models the
    /// "sudden" part of sudden events and lets tables warm up first.
    u64 onset_packets = 2000;

    /// Scenario-specific population size: flash-crowd client pool, churn
    /// per-wave flow population, port-scan sweep width.
    u64 pool_size = 4096;
    /// Churn: overlay packets per birth/death wave (whole population is
    /// replaced at each wave boundary).
    u64 wave_packets = 2048;
    /// Heavy hitter: number of elephant flows and the Zipf skew across them.
    u64 elephant_count = 64;
    double zipf_exponent = 1.2;
};

/// A deterministic, endless packet stream. next() is cheap (amortized O(1))
/// and timestamps strictly increase, matching TraceGenerator's contract.
class Scenario {
  public:
    virtual ~Scenario() = default;

    [[nodiscard]] virtual std::string name() const = 0;
    [[nodiscard]] virtual std::string description() const = 0;

    virtual net::PacketRecord next() = 0;
};

}  // namespace flowcam::workload
