#include "workload/config_patch.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cstdlib>
#include <limits>
#include <sstream>

#include "common/table_printer.hpp"
#include "hash/hash_function.hpp"
#include "workload/metrics.hpp"

namespace flowcam::workload {

namespace {

bool parse_u64_strict(const std::string& text, u64& out) {
    if (text.empty() || std::isdigit(static_cast<unsigned char>(text.front())) == 0) {
        return false;  // no signs, no leading whitespace.
    }
    const auto [ptr, ec] =
        std::from_chars(text.data(), text.data() + text.size(), out, 10);
    return ec == std::errc() && ptr == text.data() + text.size();
}

/// Locale-independent (from_chars), matching the locale-independent
/// shortest_double printer so the parse/print round-trip holds even when a
/// host process sets a non-C numeric locale.
bool parse_double_strict(const std::string& text, double& out) {
    if (text.empty()) return false;
    const auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), out);
    return ec == std::errc() && ptr == text.data() + text.size() && std::isfinite(out);
}

Status bad_value(const std::string& key, const std::string& type, const std::string& value) {
    return Status(StatusCode::kInvalidArgument,
                  "bad value '" + value + "' for " + key + ": expected " + type);
}

/// Classic Levenshtein distance (the key set is ~35 short strings; O(n*m)
/// per candidate is nothing).
std::size_t edit_distance(const std::string& a, const std::string& b) {
    std::vector<std::size_t> row(b.size() + 1);
    for (std::size_t j = 0; j <= b.size(); ++j) row[j] = j;
    for (std::size_t i = 1; i <= a.size(); ++i) {
        std::size_t diagonal = row[0];
        row[0] = i;
        for (std::size_t j = 1; j <= b.size(); ++j) {
            const std::size_t substitution = diagonal + (a[i - 1] == b[j - 1] ? 0 : 1);
            diagonal = row[j];
            row[j] = std::min({row[j] + 1, row[j - 1] + 1, substitution});
        }
    }
    return row[b.size()];
}

/// Field factories. `Access` is a lambda (ConfigTree&) -> reference to the
/// target member; print uses it on a const_cast'ed tree (read-only by
/// construction).

template <typename Access>
ConfigField uint_field(std::string key, std::string doc, Access access, u64 min_value = 0,
                       u64 max_value = ~u64{0}) {
    std::string type = "u64";
    if (min_value > 0 || max_value != ~u64{0}) {
        type += " in [" + std::to_string(min_value) + "," +
                (max_value == ~u64{0} ? "max" : std::to_string(max_value)) + "]";
    }
    ConfigField field;
    field.key = key;
    field.type = type;
    field.doc = std::move(doc);
    field.apply = [key, type, access, min_value, max_value](ConfigTree& tree,
                                                           const std::string& value) -> Status {
        u64 parsed = 0;
        if (!parse_u64_strict(value, parsed) || parsed < min_value || parsed > max_value) {
            return bad_value(key, type, value);
        }
        access(tree) = static_cast<std::remove_reference_t<decltype(access(tree))>>(parsed);
        return Status::ok();
    };
    field.print = [access](const ConfigTree& tree) {
        return std::to_string(static_cast<u64>(access(const_cast<ConfigTree&>(tree))));
    };
    return field;
}

template <typename Access>
ConfigField double_field(std::string key, std::string doc, Access access, std::string type,
                         double min_value, double max_value, bool min_exclusive) {
    ConfigField field;
    field.key = key;
    field.type = type;
    field.doc = std::move(doc);
    field.apply = [key, type, access, min_value, max_value, min_exclusive](
                      ConfigTree& tree, const std::string& value) -> Status {
        double parsed = 0.0;
        if (!parse_double_strict(value, parsed) || parsed > max_value ||
            (min_exclusive ? parsed <= min_value : parsed < min_value)) {
            return bad_value(key, type, value);
        }
        access(tree) = parsed;
        return Status::ok();
    };
    field.print = [access](const ConfigTree& tree) {
        return shortest_double(access(const_cast<ConfigTree&>(tree)));
    };
    return field;
}

template <typename Access>
ConfigField fraction_field(std::string key, std::string doc, Access access) {
    return double_field(std::move(key), std::move(doc), access, "fraction in [0,1]", 0.0, 1.0,
                        /*min_exclusive=*/false);
}

template <typename Access>
ConfigField positive_field(std::string key, std::string doc, Access access) {
    return double_field(std::move(key), std::move(doc), access, "positive number", 0.0,
                        std::numeric_limits<double>::max(), /*min_exclusive=*/true);
}

template <typename Access>
ConfigField bool_field(std::string key, std::string doc, Access access) {
    ConfigField field;
    field.key = key;
    field.type = "bool(0|1)";
    field.doc = std::move(doc);
    field.apply = [key, access](ConfigTree& tree, const std::string& value) -> Status {
        if (value == "0" || value == "false") {
            access(tree) = false;
        } else if (value == "1" || value == "true") {
            access(tree) = true;
        } else {
            return bad_value(key, "bool(0|1)", value);
        }
        return Status::ok();
    };
    field.print = [access](const ConfigTree& tree) {
        return access(const_cast<ConfigTree&>(tree)) ? std::string("1") : std::string("0");
    };
    return field;
}

/// Free-form strings (paths). Non-empty by contract so the registry's
/// printed defaults stay visible in --list-keys.
template <typename Access>
ConfigField string_field(std::string key, std::string doc, Access access) {
    ConfigField field;
    field.key = key;
    field.type = "string";
    field.doc = std::move(doc);
    field.apply = [key, access](ConfigTree& tree, const std::string& value) -> Status {
        if (value.empty()) return bad_value(key, "non-empty string", value);
        access(tree) = value;
        return Status::ok();
    };
    field.print = [access](const ConfigTree& tree) {
        return access(const_cast<ConfigTree&>(tree));
    };
    return field;
}

/// `names[i]` spells the enum value with underlying index `i`.
template <typename Access>
ConfigField enum_field(std::string key, std::string doc, std::vector<std::string> names,
                       Access access) {
    std::string type = "enum(";
    for (std::size_t i = 0; i < names.size(); ++i) {
        if (i != 0) type += "|";
        type += names[i];
    }
    type += ")";
    ConfigField field;
    field.key = key;
    field.type = type;
    field.doc = std::move(doc);
    field.apply = [key, type, names, access](ConfigTree& tree,
                                             const std::string& value) -> Status {
        for (std::size_t i = 0; i < names.size(); ++i) {
            if (names[i] == value) {
                using Enum = std::remove_reference_t<decltype(access(tree))>;
                access(tree) = static_cast<Enum>(i);
                return Status::ok();
            }
        }
        return bad_value(key, type, value);
    };
    field.print = [names, access](const ConfigTree& tree) {
        const auto index =
            static_cast<std::size_t>(access(const_cast<ConfigTree&>(tree)));
        return index < names.size() ? names[index] : "?";
    };
    return field;
}

}  // namespace

ConfigPatch::ConfigPatch() {
    const auto add = [this](ConfigField field) { fields_[field.key] = std::move(field); };
    const auto lut = [](ConfigTree& t) -> core::FlowLutConfig& { return t.runner.analyzer.lut; };

    // --- lut.* : geometry, hashing, policies, queues, housekeeping ---------
    add(uint_field("lut.buckets_per_mem", "hash locations per memory set",
                   [lut](ConfigTree& t) -> u64& { return lut(t).buckets_per_mem; }, 1));
    add(uint_field("lut.ways", "entries per hash location",
                   [lut](ConfigTree& t) -> u32& { return lut(t).ways; }, 1, 0xFFFFFFFF));
    add(uint_field("lut.cam_capacity", "collision CAM depth",
                   [lut](ConfigTree& t) -> std::size_t& { return lut(t).cam_capacity; }));
    add(enum_field("lut.hash", "index hash family",
                   {"crc32c", "lookup3", "murmur3", "tabulation", "h3"},
                   [lut](ConfigTree& t) -> hash::HashKind& { return lut(t).hash_kind; }));
    add(uint_field("lut.hash_seed", "seed of the index hash family",
                   [lut](ConfigTree& t) -> u64& { return lut(t).hash_seed; }));
    add(enum_field("lut.balance", "sequencer load-balance policy (paper Fig. 2)",
                   {"hash-bit", "weighted-hash", "alternate", "least-loaded"},
                   [lut](ConfigTree& t) -> core::BalancePolicy& { return lut(t).balance; }));
    add(fraction_field("lut.weight_a", "path-A probability for lut.balance=weighted-hash",
                       [lut](ConfigTree& t) -> double& { return lut(t).weight_a; }));
    add(enum_field("lut.insert", "bucket choice when both candidates have room",
                   {"first-fit", "least-loaded"},
                   [lut](ConfigTree& t) -> core::InsertPolicy& { return lut(t).insert_policy; }));
    add(uint_field("lut.input_depth", "input FIFO depth",
                   [lut](ConfigTree& t) -> std::size_t& { return lut(t).input_depth; }, 1));
    add(uint_field("lut.lu_queue_depth", "per-path lookup queue depth",
                   [lut](ConfigTree& t) -> std::size_t& { return lut(t).lu_queue_depth; }, 1));
    add(uint_field("lut.match_queue_depth", "flow-match queue depth",
                   [lut](ConfigTree& t) -> std::size_t& { return lut(t).match_queue_depth; },
                   1));
    add(uint_field("lut.update_queue_depth", "update-block queue depth",
                   [lut](ConfigTree& t) -> std::size_t& { return lut(t).update_queue_depth; },
                   1));
    add(uint_field("lut.output_depth", "completion FIFO depth",
                   [lut](ConfigTree& t) -> std::size_t& { return lut(t).output_depth; }, 1));
    add(uint_field("lut.burst_write_threshold",
                   "BWr_Gen releases when this many updates wait (paper Fig. 5)",
                   [lut](ConfigTree& t) -> u32& { return lut(t).burst_write_threshold; }, 1,
                   0xFFFFFFFF));
    add(uint_field("lut.burst_write_timeout",
                   "...or when the oldest queued update is this many cycles old",
                   [lut](ConfigTree& t) -> Cycle& { return lut(t).burst_write_timeout; }, 1));
    add(uint_field("lut.flow_timeout_ns", "idle time (stream ns) after which a flow expires",
                   [lut](ConfigTree& t) -> u64& { return lut(t).flow_timeout_ns; }, 1));
    add(uint_field("lut.housekeeping_scan_per_cycle",
                   "flow records scanned per housekeeping tick (0 disables expiry)",
                   [lut](ConfigTree& t) -> u32& { return lut(t).housekeeping_scan_per_cycle; },
                   0, 0xFFFFFFFF));
    add(uint_field("lut.batch",
                   "descriptors per host-side dispatch batch (0 = scalar dispatch); results "
                   "are byte-identical either way",
                   [lut](ConfigTree& t) -> u32& { return lut(t).batch; }, 0, 64));

    // --- lut.* : overload resilience (admission / eviction / reservation) --
    add(enum_field("lut.admission", "new-flow admission policy under pressure",
                   {"always", "probabilistic", "reject-full"},
                   [lut](ConfigTree& t) -> core::AdmissionPolicy& { return lut(t).admission; }));
    add(fraction_field("lut.admission_pressure",
                       "load fraction above which admission policies engage (whole table OR "
                       "collision CAM — a CAM-saturated table is pressured too)",
                       [lut](ConfigTree& t) -> double& { return lut(t).admission_pressure; }));
    add(fraction_field("lut.admission_p",
                       "probabilistic: admit chance for a never-before-seen flow",
                       [lut](ConfigTree& t) -> double& { return lut(t).admission_p; }));
    add(enum_field("lut.eviction", "victim policy when placement fails",
                   {"none", "lru", "cam-oldest", "clock"},
                   [lut](ConfigTree& t) -> core::EvictionPolicy& { return lut(t).eviction; }));
    add(bool_field("lut.reservation",
                   "grant new flows provisional slots under pressure; a second packet "
                   "confirms, the deadline reclaims",
                   [lut](ConfigTree& t) -> bool& { return lut(t).reservation; }));
    add(uint_field("lut.reservation_deadline",
                   "cycles a provisional slot survives without a confirming packet",
                   [lut](ConfigTree& t) -> Cycle& { return lut(t).reservation_deadline; }, 1));

    // --- fault.* : deterministic fault injection ---------------------------
    const auto fault = [](ConfigTree& t) -> faults::FaultConfig& { return t.runner.fault; };
    add(uint_field("fault.seed", "seed of the (single) fault-injection RNG stream",
                   [fault](ConfigTree& t) -> u64& { return fault(t).seed; }));
    add(fraction_field("fault.ddr_reject_p",
                       "chance per DDR enqueue of starting a queue-full burst",
                       [fault](ConfigTree& t) -> double& { return fault(t).ddr_reject_p; }));
    add(uint_field("fault.ddr_reject_len", "enqueue rejections per DDR queue-full burst",
                   [fault](ConfigTree& t) -> u32& { return fault(t).ddr_reject_len; }, 1,
                   0xFFFFFFFF));
    add(fraction_field("fault.resp_delay_p", "chance per DDR response of a delivery delay",
                       [fault](ConfigTree& t) -> double& { return fault(t).resp_delay_p; }));
    add(uint_field("fault.resp_delay_cycles", "system cycles a delayed response is held",
                   [fault](ConfigTree& t) -> u32& { return fault(t).resp_delay_cycles; }, 1,
                   0xFFFFFFFF));
    add(fraction_field("fault.resp_dup_p",
                       "chance per DDR response of a duplicated delivery (exercises the "
                       "unknown-id guard)",
                       [fault](ConfigTree& t) -> double& { return fault(t).resp_dup_p; }));
    add(fraction_field("fault.buffer_storm_p",
                       "chance per feed of starting a packet-buffer backpressure storm",
                       [fault](ConfigTree& t) -> double& { return fault(t).buffer_storm_p; }));
    add(uint_field("fault.buffer_storm_len", "rejected feeds per backpressure storm",
                   [fault](ConfigTree& t) -> u32& { return fault(t).buffer_storm_len; }, 1,
                   0xFFFFFFFF));
    add(uint_field("fault.expiry_skew_ns",
                   "stream-ns added to the expiry clock only (clock-skewed expiry)",
                   [fault](ConfigTree& t) -> u64& { return fault(t).expiry_skew_ns; }));
    add(bool_field("fault.audit",
                   "run the invariant auditor during and after the run (audit_violations)",
                   [fault](ConfigTree& t) -> bool& { return fault(t).audit; }));
    add(uint_field("fault.campaign_onset", "cycle the first correlated campaign window opens",
                   [fault](ConfigTree& t) -> u64& { return fault(t).campaign_onset; }));
    add(uint_field("fault.campaign_len",
                   "cycles per correlated campaign window (0 = campaigns off)",
                   [fault](ConfigTree& t) -> u64& { return fault(t).campaign_len; }));
    add(uint_field("fault.campaign_period",
                   "cycles between window starts (0 = a single one-shot window)",
                   [fault](ConfigTree& t) -> u64& { return fault(t).campaign_period; }));
    add(uint_field("fault.campaign_count", "campaign windows to fire (0 = unbounded)",
                   [fault](ConfigTree& t) -> u64& { return fault(t).campaign_count; }));
    add(fraction_field("fault.campaign_intensity",
                       "floor probability every fault family fires with inside a window",
                       [fault](ConfigTree& t) -> double& { return fault(t).campaign_intensity; }));

    // --- governor.* : adaptive overload governor ---------------------------
    const auto gov = [](ConfigTree& t) -> governor::GovernorConfig& { return t.runner.governor; };
    add(bool_field("governor.on",
                   "enable the closed-loop staged-degradation governor (off = byte-identical "
                   "to a build without it)",
                   [gov](ConfigTree& t) -> bool& { return gov(t).on; }));
    add(uint_field("governor.interval", "cycles between pressure samples",
                   [gov](ConfigTree& t) -> u64& { return gov(t).interval; }, 1));
    add(fraction_field("governor.alpha", "EWMA weight for the occupancy slope",
                       [gov](ConfigTree& t) -> double& { return gov(t).alpha; }));
    add(positive_field("governor.slope_gain", "pressure-score boost per unit positive slope",
                       [gov](ConfigTree& t) -> double& { return gov(t).slope_gain; }));
    add(fraction_field("governor.drop_weight", "score weight of the per-sample drop rate",
                       [gov](ConfigTree& t) -> double& { return gov(t).drop_weight; }));
    add(fraction_field("governor.reclaim_weight",
                       "score weight of the reservation-reclaim rate",
                       [gov](ConfigTree& t) -> double& { return gov(t).reclaim_weight; }));
    add(fraction_field("governor.buffer_weight",
                       "score weight of the packet-buffer fill fraction",
                       [gov](ConfigTree& t) -> double& { return gov(t).buffer_weight; }));
    add(fraction_field("governor.enter_l1", "score at which L1 (shedding) engages",
                       [gov](ConfigTree& t) -> double& { return gov(t).enter_l1; }));
    add(fraction_field("governor.enter_l2", "score at which L2 (recycling) engages",
                       [gov](ConfigTree& t) -> double& { return gov(t).enter_l2; }));
    add(fraction_field("governor.enter_l3", "score at which L3 (survival) engages",
                       [gov](ConfigTree& t) -> double& { return gov(t).enter_l3; }));
    add(fraction_field("governor.exit_l1", "score below which L1 steps back to L0",
                       [gov](ConfigTree& t) -> double& { return gov(t).exit_l1; }));
    add(fraction_field("governor.exit_l2", "score below which L2 steps back to L1",
                       [gov](ConfigTree& t) -> double& { return gov(t).exit_l2; }));
    add(fraction_field("governor.exit_l3", "score below which L3 steps back to L2",
                       [gov](ConfigTree& t) -> double& { return gov(t).exit_l3; }));
    add(uint_field("governor.dwell",
                   "cycles the score must hold below the exit threshold per step down",
                   [gov](ConfigTree& t) -> u64& { return gov(t).dwell; }, 1));
    add(uint_field("governor.recovery_budget",
                   "recovery SLO: worst allowed pressure-clear -> L0 walk-down (cycles)",
                   [gov](ConfigTree& t) -> u64& { return gov(t).recovery_budget; }, 1));
    add(enum_field("governor.eviction", "eviction policy L2/L3 engage",
                   {"none", "lru", "cam-oldest", "clock"},
                   [gov](ConfigTree& t) -> core::EvictionPolicy& { return gov(t).eviction; }));
    add(uint_field("governor.reclaim_deadline",
                   "aggressive reservation-reclaim deadline applied at L3 (cycles)",
                   [gov](ConfigTree& t) -> Cycle& { return gov(t).reclaim_deadline; }, 1));

    // --- analyzer.* : event engine + packet buffer -------------------------
    add(uint_field("analyzer.heavy_hitter_bytes", "heavy-hitter event byte threshold",
                   [](ConfigTree& t) -> u64& { return t.runner.analyzer.heavy_hitter_bytes; },
                   1));
    add(uint_field("analyzer.port_scan_threshold",
                   "distinct dst ports per src IP before a port-scan event",
                   [](ConfigTree& t) -> u32& { return t.runner.analyzer.port_scan_threshold; },
                   1, 0xFFFFFFFF));
    add(fraction_field("analyzer.table_pressure",
                       "fraction of table capacity that raises table-pressure",
                       [](ConfigTree& t) -> double& { return t.runner.analyzer.table_pressure; }));
    add(uint_field("analyzer.packet_buffer_depth", "packet buffer depth (frames)",
                   [](ConfigTree& t) -> std::size_t& {
                       return t.runner.analyzer.packet_buffer_depth;
                   },
                   1));

    // --- runner.* : offered load + pacing ----------------------------------
    add(uint_field("runner.packets", "packets to offer before draining",
                   [](ConfigTree& t) -> u64& { return t.runner.packets; }, 1));
    add(uint_field("runner.cycles_per_packet",
                   "offer one packet every N system cycles (2 = 100 MHz input)",
                   [](ConfigTree& t) -> u32& { return t.runner.cycles_per_packet; }, 1,
                   0xFFFFFFFF));
    add(uint_field("runner.max_cycles", "cycle budget before giving up the drain",
                   [](ConfigTree& t) -> u64& { return t.runner.max_cycles; }, 1));
    add(positive_field("runner.time_scale",
                       "multiply offered timestamps (reach the 30s flow timeout in us runs)",
                       [](ConfigTree& t) -> double& { return t.runner.time_scale; }));

    // --- shard.* : sharded multi-lane execution ----------------------------
    {
        // Bespoke field: the lane count is a membership test (1|2|4|8 — the
        // divisors of the fixed virtual-slice count), not a range.
        ConfigField field;
        field.key = "shard.lanes";
        field.type = "1|2|4|8";
        field.doc = "execution lanes (1 = monolithic; RSS-style slice sharding otherwise)";
        field.apply = [](ConfigTree& tree, const std::string& value) -> Status {
            u64 parsed = 0;
            if (!parse_u64_strict(value, parsed) ||
                (parsed != 1 && parsed != 2 && parsed != 4 && parsed != 8)) {
                return bad_value("shard.lanes", "1|2|4|8", value);
            }
            tree.runner.shard.lanes = static_cast<u32>(parsed);
            return Status::ok();
        };
        field.print = [](const ConfigTree& tree) {
            return std::to_string(tree.runner.shard.lanes);
        };
        add(std::move(field));
    }
    add(uint_field("shard.epoch_cycles",
                   "cross-lane barrier interval (system cycles) under shard.lanes > 1",
                   [](ConfigTree& t) -> u64& { return t.runner.shard.epoch_cycles; }, 1));

    // --- obs.* : flight recorder (tracing + counter sampling) --------------
    add(uint_field("obs.sample_interval",
                   "snapshot all counters every N system cycles (0 = sampling off)",
                   [](ConfigTree& t) -> u64& { return t.runner.obs.sample_interval; }));
    add(string_field("obs.sample_path", "JSONL file the counter time series is written to",
                     [](ConfigTree& t) -> std::string& { return t.runner.obs.sample_path; }));
    add(bool_field("obs.trace", "record engine/DDR/scenario events as Chrome trace JSON",
                   [](ConfigTree& t) -> bool& { return t.runner.obs.trace; }));
    add(string_field("obs.trace_path", "file the Chrome trace JSON is written to",
                     [](ConfigTree& t) -> std::string& { return t.runner.obs.trace_path; }));
    add(uint_field("obs.ring_events",
                   "trace ring capacity; when full the oldest events are overwritten",
                   [](ConfigTree& t) -> u64& { return t.runner.obs.ring_events; }, 1));

    // --- scenario.* : stream shape -----------------------------------------
    add(uint_field("scenario.seed", "master seed pinning the whole offered stream",
                   [](ConfigTree& t) -> u64& { return t.scenario.seed; }));
    add(fraction_field("scenario.attack", "fraction of post-onset packets from the overlay",
                       [](ConfigTree& t) -> double& { return t.scenario.attack_fraction; }));
    add(uint_field("scenario.onset_packets", "background-only warmup before the overlay",
                   [](ConfigTree& t) -> u64& { return t.scenario.onset_packets; }));
    add(uint_field("scenario.horizon_packets",
                   "run length schedules resolve against (0 = the runner's packet budget)",
                   [](ConfigTree& t) -> u64& { return t.scenario.horizon_packets; }));
    add(uint_field("scenario.pool_size",
                   "scenario population (flash-crowd clients, churn pool, scan width)",
                   [](ConfigTree& t) -> u64& { return t.scenario.pool_size; }, 1));
    add(uint_field("scenario.wave_packets", "churn: overlay packets per birth/death wave",
                   [](ConfigTree& t) -> u64& { return t.scenario.wave_packets; }, 1));
    add(uint_field("scenario.elephant_count", "heavy-hitter: number of elephant flows",
                   [](ConfigTree& t) -> u64& { return t.scenario.elephant_count; }, 1));
    add(positive_field("scenario.zipf_exponent", "heavy-hitter: Zipf skew across elephants",
                       [](ConfigTree& t) -> double& { return t.scenario.zipf_exponent; }));
    add(positive_field("scenario.mean_gap_ns", "background mean packet inter-arrival (ns)",
                       [](ConfigTree& t) -> double& {
                           return t.scenario.background.mean_gap_ns;
                       }));
}

const ConfigPatch& ConfigPatch::registry() {
    static const ConfigPatch instance;
    return instance;
}

const ConfigField* ConfigPatch::find(const std::string& key) const {
    const auto it = fields_.find(key);
    return it == fields_.end() ? nullptr : &it->second;
}

std::vector<std::string> ConfigPatch::keys() const {
    std::vector<std::string> out;
    out.reserve(fields_.size());
    for (const auto& [key, field] : fields_) out.push_back(key);
    return out;
}

Status ConfigPatch::apply(ConfigTree& tree, const std::string& key,
                          const std::string& value) const {
    const ConfigField* field = find(key);
    if (field == nullptr) {
        std::string message = "unknown config key '" + key + "'";
        const std::string nearest = suggest(key);
        if (!nearest.empty()) message += " (did you mean '" + nearest + "'?)";
        message += "; --list-keys prints the registry";
        return Status(StatusCode::kNotFound, message);
    }
    return field->apply(tree, value);
}

Status ConfigPatch::apply_assignment(ConfigTree& tree, const std::string& assignment) const {
    const std::size_t eq = assignment.find('=');
    if (eq == std::string::npos || eq == 0) {
        return Status(StatusCode::kInvalidArgument,
                      "'" + assignment + "' is not a key=value assignment");
    }
    return apply(tree, assignment.substr(0, eq), assignment.substr(eq + 1));
}

std::string ConfigPatch::print(const ConfigTree& tree, const std::string& key) const {
    const ConfigField* field = find(key);
    return field == nullptr ? "" : field->print(tree);
}

std::string ConfigPatch::list_keys() const {
    const ConfigTree defaults;
    TablePrinter table({"key", "type", "default", "doc"});
    for (const auto& [key, field] : fields_) {
        table.add_row({key, field.type, field.print(defaults), field.doc});
    }
    std::ostringstream out;
    table.print(out, "Patchable config keys (--set key=value, --sweep key=v1,v2,...)");
    return out.str();
}

std::string ConfigPatch::suggest(const std::string& key) const {
    std::string best;
    std::size_t best_distance = ~std::size_t{0};
    for (const auto& [candidate, field] : fields_) {
        const std::size_t distance = edit_distance(key, candidate);
        if (distance < best_distance) {
            best_distance = distance;
            best = candidate;
        }
    }
    // Only suggest plausible typos, not wild guesses.
    const std::size_t threshold = std::max<std::size_t>(2, key.size() / 3);
    return best_distance <= threshold ? best : "";
}

}  // namespace flowcam::workload
