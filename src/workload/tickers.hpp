// Internal Ticker adapters and the counter-harvest shared by the monolithic
// ScenarioRunner (workload/runner.cpp) and the sharded engine
// (shard/sharded_engine.cpp). Both build the same per-stack pipeline —
// source -> analyzer (-> sampler -> auditor) — around one sim::Engine; only
// the source differs (full stream vs. slice-filtered stream), so everything
// downstream of the source lives here once.
#pragma once

#include <fstream>
#include <string>

#include "analyzer/analyzer.hpp"
#include "obs/obs.hpp"
#include "sim/ticker.hpp"
#include "workload/runner.hpp"

namespace flowcam::workload::detail {

/// Adapts the analyzer (packet buffer -> Flow LUT -> event engine) to the
/// engine's Ticker contract; one tick advances the whole stack one system
/// cycle.
class AnalyzerTicker final : public sim::Ticker {
  public:
    explicit AnalyzerTicker(analyzer::TrafficAnalyzer& analyzer) : analyzer_(analyzer) {}
    void tick(Cycle /*now*/) override { analyzer_.step(); }
    [[nodiscard]] std::string name() const override { return "traffic-analyzer"; }
    [[nodiscard]] u64 idle_cycles_hint() const override { return analyzer_.idle_cycles_hint(); }
    void skip(u64 cycles) override { analyzer_.skip_idle(cycles); }

  private:
    analyzer::TrafficAnalyzer& analyzer_;
};

/// Snapshots all registered counters every `interval` system cycles. The
/// ticker never pins the fast-forward (hint = infinite): clamping idle jumps
/// to sampling boundaries would change engine.now() and break the obs-off /
/// obs-on metric identity, so samples simply stretch across idle stretches —
/// the next tick after a jump catches up with one snapshot.
class SamplerTicker final : public sim::Ticker {
  public:
    SamplerTicker(obs::Recorder& recorder, u64 interval)
        : recorder_(recorder), interval_(interval == 0 ? 1 : interval) {}

    void tick(Cycle now) override {
        if (now < next_due_) return;
        recorder_.sample(now);
        next_due_ = now + interval_;
    }

    [[nodiscard]] std::string name() const override { return "obs-sampler"; }
    [[nodiscard]] u64 idle_cycles_hint() const override { return ~u64{0}; }

  private:
    obs::Recorder& recorder_;
    u64 interval_;
    Cycle next_due_ = 0;
};

/// Runs the Flow LUT's invariant auditor periodically while faults are
/// firing (fault.audit=1) — the cross-check mode of the robustness story:
/// conservation invariants must hold *during* the storm, not only after it.
/// Cheap O(1) checks only (final_pass=false); never pins the fast-forward.
class AuditorTicker final : public sim::Ticker {
  public:
    explicit AuditorTicker(core::FlowLut& lut, u64 interval = 1024)
        : lut_(lut), interval_(interval == 0 ? 1 : interval) {}

    void tick(Cycle now) override {
        if (now < next_due_) return;
        violations_ += lut_.audit(/*final_pass=*/false);
        next_due_ = now + interval_;
    }

    [[nodiscard]] std::string name() const override { return "fault-auditor"; }
    [[nodiscard]] u64 idle_cycles_hint() const override { return ~u64{0}; }

    [[nodiscard]] u64 violations() const { return violations_; }

  private:
    core::FlowLut& lut_;
    u64 interval_;
    Cycle next_due_ = 0;
    u64 violations_ = 0;
};

/// Best-effort artifact write; observability output must never fail a run.
inline void write_file(const std::string& path, const std::string& contents) {
    if (path.empty()) return;
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (out) out << contents;
}

/// Copy every additive counter a finished analyzer stack reports into
/// `metrics` — the Flow LUT stats, the analyzer's drop split, and the event
/// tallies. These are exactly the fields the sharded merge sums in slice
/// order; rates, cycles, fault/audit outcomes and latency percentiles are
/// filled by the caller (they need run-level context: engine clock, auditor,
/// recorder).
inline void harvest_counters(ScenarioMetrics& metrics, analyzer::TrafficAnalyzer& analyzer) {
    const core::FlowLutStats& lut = analyzer.lut().stats();
    metrics.completions = lut.completions;
    metrics.cam_hits = lut.cam_hits;
    metrics.lu1_hits = lut.lu1_hits;
    metrics.lu2_hits = lut.lu2_hits;
    metrics.new_flows = lut.new_flows;
    metrics.drops = lut.drops;
    // TrafficAnalyzer counts one "drop" per rejected feed_record call; with
    // a retrying source these are backpressure stalls, not lost packets.
    metrics.buffer_retries = analyzer.stats().dropped_buffer_full;
    metrics.flows_expired = analyzer.lut().flow_state().expired_total();
    metrics.admission_rejects = lut.admission_rejects;
    metrics.evictions_lru = lut.evictions_lru;
    metrics.evictions_cam = lut.evictions_cam;
    metrics.evictions_clock = lut.evictions_clock;
    metrics.reservations_granted = lut.reservations_granted;
    metrics.reservations_confirmed = lut.reservations_confirmed;
    metrics.reservations_reclaimed = lut.reservations_reclaimed;
    metrics.drops_real = analyzer.stats().drops_real;
    metrics.drops_overlay = analyzer.stats().drops_overlay;
    for (const auto& event : analyzer.events()) {
        switch (event.kind) {
            case analyzer::EventKind::kPortScan: ++metrics.events_port_scan; break;
            case analyzer::EventKind::kHeavyHitter: ++metrics.events_heavy_hitter; break;
            case analyzer::EventKind::kTablePressure: ++metrics.events_table_pressure; break;
            case analyzer::EventKind::kFlowExpired: ++metrics.events_flow_expired; break;
            default: break;
        }
    }
}

}  // namespace flowcam::workload::detail
