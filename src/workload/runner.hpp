// ScenarioRunner: one call runs any registered scenario end-to-end through
// the timed system — a source Ticker pulls packets from the Scenario and
// offers them (with backpressure) into the TrafficAnalyzer, whose Flow LUT
// ticks at the system clock; a sim::Engine sequences both per cycle — and
// reports per-scenario metrics: CAM/LU1/LU2 hit split, drops, new-flow
// ratio, lookup rate and the line rate it sustains.
#pragma once

#include <string>

#include "analyzer/analyzer.hpp"
#include "common/result.hpp"
#include "faults/faults.hpp"
#include "governor/governor.hpp"
#include "obs/obs.hpp"
#include "shard/shard.hpp"
#include "workload/registry.hpp"
#include "workload/scenario.hpp"

namespace flowcam::workload {

struct RunnerConfig {
    analyzer::AnalyzerConfig analyzer;
    /// Packets to offer before draining.
    u64 packets = 20'000;
    /// Offer one packet every this many system cycles (2 => 100 MHz input on
    /// the 200 MHz fabric, the top of the paper's test range).
    u32 cycles_per_packet = 2;
    /// Cycle budget for offering + draining before giving up.
    u64 max_cycles = 50'000'000;
    /// Scenario-time compression: offered timestamps are multiplied by this
    /// before they enter the analyzer, so stream time (and with it the 30 s
    /// flow idle timeout) is reachable inside microsecond-span runs. The
    /// scaled stream stays strictly monotonic; offered_gbps and
    /// trace_span_ns are reported in scaled time.
    double time_scale = 1.0;
    /// Flight-recorder knobs (obs.* ConfigPatch keys). Disabled by default;
    /// when both trace and sampling are off no Recorder is created and the
    /// hot path stays allocation-free.
    obs::ObsConfig obs;
    /// Fault-injection knobs (fault.* ConfigPatch keys). All off by default;
    /// when off no injector is constructed and the run is byte-identical to
    /// a build without the harness.
    faults::FaultConfig fault;
    /// Overload-governor knobs (governor.* ConfigPatch keys). Off by
    /// default; when off no governor or ticker is constructed and runs are
    /// byte-identical to a build without src/governor.
    governor::GovernorConfig governor;
    /// Sharded-execution knobs (shard.* ConfigPatch keys plus the runtime
    /// jobs count). lanes=1 (the default) keeps the monolithic path;
    /// lanes>1 routes the run through shard::ShardedEngine.
    shard::ShardConfig shard;

    RunnerConfig() {
        // Simulation-friendly default geometry (the prototype's 8 M-entry
        // table would dominate runtime without changing the shape of the
        // answers); callers can override any of it.
        analyzer.lut.buckets_per_mem = u64{1} << 14;
        analyzer.lut.cam_capacity = 2048;
    }
};

struct ScenarioMetrics {
    std::string scenario;

    // Offered stream (ground truth from the generator).
    u64 packets = 0;
    u64 bytes = 0;
    u64 distinct_flows = 0;
    u64 overlay_packets = 0;
    u64 trace_span_ns = 0;  ///< last offered timestamp - first.

    // Flow LUT outcome.
    u64 completions = 0;
    u64 cam_hits = 0;
    u64 lu1_hits = 0;
    u64 lu2_hits = 0;
    u64 new_flows = 0;
    u64 drops = 0;  ///< table completely full (these still retire with an
                    ///< invalid FID, so completions == packets when drained).
    u64 buffer_retries = 0;  ///< packet-buffer backpressure retries (the
                             ///< source holds the frame, nothing is lost).
    u64 flows_expired = 0;   ///< records evicted by the idle-timeout scan.
    u64 hash_batches = 0;    ///< multi-key hash batches prepared by the
                             ///< batched source (0 under scalar dispatch).

    // Overload-resilience outcome (all zero under the default
    // always-admit / no-eviction / no-reservation policies).
    u64 admission_rejects = 0;       ///< new flows turned away at admission.
    u64 evictions_lru = 0;           ///< idle victims evicted from Mem1/Mem2.
    u64 evictions_cam = 0;           ///< oldest entries evicted from the CAM.
    u64 evictions_clock = 0;         ///< second-chance sweep victims.
    u64 reservations_granted = 0;    ///< provisional slots handed out.
    u64 reservations_confirmed = 0;  ///< confirmed by a second packet.
    u64 reservations_reclaimed = 0;  ///< deadline passed; slot taken back.
    u64 drops_real = 0;              ///< dropped packets of background flows.
    u64 drops_overlay = 0;           ///< dropped packets of attack overlay.

    // Fault-injection outcome (zero when fault.* is off).
    u64 faults_injected = 0;    ///< total faults fired across all sites.
    u64 audit_violations = 0;   ///< invariant auditor failures (0 = green).
    u64 fault_campaign_windows = 0;  ///< correlated campaign windows entered.

    // Overload-governor outcome (all zero — and slo_ok trivially 1 — when
    // governor.on is off). Sharded runs sum transitions, take the max of
    // levels/recovery, and AND slo_ok across slices.
    u64 governor_transitions = 0;     ///< level changes (up + down).
    u64 governor_max_level = 0;       ///< highest degradation level reached.
    u64 governor_final_level = 0;     ///< level at end of run (SLO wants 0).
    u64 governor_recovery_cycles = 0; ///< worst pressure-clear -> L0 walk-down.
    u64 governor_slo_ok = 1;          ///< recovery SLO verdict (1 = met).

    // Descriptor end-to-end latency (offer -> completion, sim-ns), from the
    // flight recorder's log-bucketed histogram. All zero when obs is off —
    // the percentiles cost one histogram add per completion, so they are
    // only collected when a Recorder is attached.
    u64 lat_p50_ns = 0;
    u64 lat_p95_ns = 0;
    u64 lat_p99_ns = 0;
    u64 lat_max_ns = 0;

    // Analyzer events.
    u64 events_port_scan = 0;
    u64 events_heavy_hitter = 0;
    u64 events_table_pressure = 0;
    u64 events_flow_expired = 0;

    // Timing.
    u64 cycles = 0;
    bool drained = false;
    double new_flow_ratio = 0.0;  ///< new flows / completions (paper's B/A).
    double mdesc_per_s = 0.0;     ///< lookup rate over the busy interval.
    double sustained_gbps = 0.0;  ///< min-frame line rate that lookup rate serves (§V-B).
    double offered_gbps = 0.0;    ///< actual bytes over the trace's time span.

    /// Rendered through the metric schema registry (workload/metrics.hpp) —
    /// the same field list that backs the JSONL, CSV and grid renderers.
    [[nodiscard]] std::string to_string() const;
};

class ScenarioRunner {
  public:
    explicit ScenarioRunner(RunnerConfig config = {});

    /// Instantiate `name` — a registry name, a "replay:<path>" trace, or a
    /// composed spec like "flash_crowd+syn_flood@onset=0.3,ramp=0.0:0.4"
    /// (see workload/compose.hpp for the grammar) — and run it; kNotFound
    /// for unknown names, kInvalidArgument for malformed specs. This is a
    /// thin wrapper over a one-cell Experiment (workload/experiment.hpp).
    [[nodiscard]] Result<ScenarioMetrics> run(const std::string& name,
                                              const ScenarioConfig& scenario_config);
    [[nodiscard]] Result<ScenarioMetrics> run(const Registry& registry, const std::string& name,
                                              const ScenarioConfig& scenario_config);

    /// Run an already-constructed scenario through a fresh analyzer stack.
    [[nodiscard]] ScenarioMetrics run(Scenario& scenario);

    [[nodiscard]] const RunnerConfig& config() const { return config_; }

  private:
    RunnerConfig config_;
};

}  // namespace flowcam::workload
