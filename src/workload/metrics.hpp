// The metric schema registry: every ScenarioMetrics field, described once
// (name, unit, kind, doc, member pointer), and rendered everywhere from that
// one description — ScenarioMetrics::to_string, the bench/experiment JSONL
// stream, the grid CSV and the aligned terminal table all read this list.
// Adding a metric is one line in metric_schema() plus the struct field.
#pragma once

#include <string>
#include <vector>

#include "workload/runner.hpp"

namespace flowcam::workload {

enum class MetricKind : u8 { kString, kU64, kDouble, kBool };

struct MetricField {
    const char* name;  ///< stable identifier ("cam_hits"); JSONL/CSV column.
    const char* unit;  ///< "pkts", "flows", "ratio", "cycles", "Gb/s", ... ("" = plain).
    const char* doc;   ///< one-line meaning, for readers of this registry (the
                       ///< renderers emit name/unit/value; docs live here).
    MetricKind kind;
    bool grid;         ///< include in the compact terminal grid (wide tables stay readable).
    int decimals;      ///< human formatting for kDouble (JSON/CSV always use the
                       ///< shortest exact round-trip rendering).
    // Exactly one member pointer is set, matching `kind`.
    std::string ScenarioMetrics::* s = nullptr;
    u64 ScenarioMetrics::* u = nullptr;
    double ScenarioMetrics::* d = nullptr;
    bool ScenarioMetrics::* b = nullptr;
};

/// The full schema, in emission order ("scenario" first).
[[nodiscard]] const std::vector<MetricField>& metric_schema();

/// Human-oriented rendering of one field ("12.34", "true", "syn_flood").
[[nodiscard]] std::string metric_text(const MetricField& field, const ScenarioMetrics& metrics);

/// JSON literal for one field (quotes + escapes strings; doubles use the
/// shortest exact round-trip rendering, byte-stable across runs and jobs).
[[nodiscard]] std::string metric_json(const MetricField& field, const ScenarioMetrics& metrics);

[[nodiscard]] std::string json_escape(const std::string& raw);

/// Shortest decimal rendering that parses back to the exact double
/// (std::to_chars) — shared by the JSON/CSV emitters and ConfigPatch
/// printers so every machine-readable surface round-trips.
[[nodiscard]] std::string shortest_double(double value);

/// One JSONL object over the whole schema; `lead` key/value pairs (already
/// valid JSON values NOT included — they are escaped here) come first, for
/// experiment-cell coordinates.
[[nodiscard]] std::string metrics_json_object(
    const ScenarioMetrics& metrics,
    const std::vector<std::pair<std::string, std::string>>& lead = {});

/// CSV over the whole schema; `lead` columns come first.
[[nodiscard]] std::string metrics_csv_header(const std::vector<std::string>& lead = {});
[[nodiscard]] std::string metrics_csv_row(const ScenarioMetrics& metrics,
                                          const std::vector<std::string>& lead = {});

}  // namespace flowcam::workload
