// Composable scenario algebra: merge N overlay generators onto one
// calibrated background with per-overlay onset/offset windows and intensity
// schedules, under a single deterministic merged clock — a SYN flood arriving
// mid flash-crowd, churn with a ramping attack fraction, and anything else
// the spec grammar can express:
//
//   spec     := element ('+' element)*
//   element  := name ('@' opt (',' opt)*)?
//   opt      := 'onset=' F | 'offset=' F | 'attack=' F
//             | 'ramp=' F ':' F | 'pulse=' F ':' F ':' N
//
//   F values for onset/offset <= 1.0 are fractions of the run horizon,
//   > 1.0 are absolute packet counts. ramp=A:B ramps the element's attack
//   fraction linearly from A at its onset to B at its offset (or the run
//   end); pulse=LO:HI:N alternates N square pulses. 'baseline' elements are
//   dropped (the background is always present). 'replay:<path>' is valid as
//   a whole spec or as the FIRST element, where it replaces the synthetic
//   background: 'replay:trace.csv+syn_flood@onset=0.3' overlays a SYN flood
//   on the captured trace — replayed packets keep their captured timing,
//   overlay packets slot in right after the previous packet, and ground
//   truth stays separable (replayed flow indices sit below kOverlayFlowBase,
//   each overlay track owns a disjoint range above it). A replay element
//   anywhere but first is an error (only backgrounds replay).
//
//   flash_crowd+syn_flood@onset=0.3,ramp=0.0:0.4
//     => flash crowd from the default onset; a SYN flood joining at 30% of
//        the run whose intensity ramps from 0 to 0.4 by the end.
//
// Each overlay track is remapped into its own flow-index range
// (kOverlayFlowBase + i*kOverlayTrackStride) and seeded independently from
// the base seed, so composed ground truth stays separable and two tracks of
// the same generator do not correlate.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "common/rng.hpp"
#include "workload/registry.hpp"
#include "workload/scenarios.hpp"

namespace flowcam::workload {

/// One overlay element of a composition, as parsed from the spec grammar
/// (or built directly by API callers). Negative fields mean "inherit from
/// ScenarioConfig".
struct OverlayTrackSpec {
    std::string scenario;
    double onset = -1.0;   ///< <0: config.onset_packets; <=1: run fraction; >1: packets.
    double offset = -1.0;  ///< <0: runs to the end of the stream; units as onset.
    double attack = -1.0;  ///< <0: config.attack_fraction.
    IntensitySchedule intensity;  ///< overrides `attack` when non-empty.
};

/// N overlay tracks over one background, one merged clock. Per packet, one
/// gate draw picks a track with its current intensity (cumulative walk, so
/// fractions sum; if they exceed 1.0 the background is crowded out) or falls
/// through to the background.
class ComposedScenario final : public Scenario {
  public:
    /// Build from track specs; `display_name` is what name() reports (the
    /// original spec string for parsed compositions). Fails on unknown or
    /// non-overlay track scenarios and on windows with offset <= onset.
    /// A non-null `background` (e.g. a TraceReplayScenario) replaces the
    /// synthetic Pitman-Yor background: its packets keep their own
    /// timestamps, overlay packets are nudged in right after the previous
    /// packet (the merged stream stays strictly monotonic).
    [[nodiscard]] static Result<std::unique_ptr<ComposedScenario>> create(
        const Registry& registry, const std::vector<OverlayTrackSpec>& specs,
        const ScenarioConfig& config, std::string display_name,
        std::unique_ptr<Scenario> background = nullptr);

    [[nodiscard]] std::string name() const override { return display_name_; }
    [[nodiscard]] std::string description() const override;

    net::PacketRecord next() override;

    [[nodiscard]] std::size_t track_count() const { return tracks_.size(); }
    /// The current intensity of track `i` (for tests/introspection).
    [[nodiscard]] double track_fraction(std::size_t i) const;

  private:
    struct Track {
        std::unique_ptr<OverlayScenario> child;
        u64 onset = 0;
        u64 offset = kNoOffset;  ///< first packet index the track is off again.
        double attack = 0.0;
        IntensitySchedule intensity;
        u64 ramp_end = 0;  ///< schedule time hits 1.0 here (offset or horizon).
        u64 emitted = 0;   ///< overlay packets drawn from this track.
    };
    static constexpr u64 kNoOffset = ~u64{0};

    explicit ComposedScenario(const ScenarioConfig& config, std::string display_name);

    [[nodiscard]] double fraction_of(const Track& track) const;

    ScenarioConfig config_;
    std::string display_name_;
    net::TraceGenerator background_;
    /// Replaces background_ when set (replay-as-background composition).
    std::unique_ptr<Scenario> replay_background_;
    Xoshiro256 gate_rng_;   ///< one track-vs-background draw per packet.
    Xoshiro256 clock_rng_;  ///< inter-arrival draws for the merged stream.
    std::vector<Track> tracks_;
    u64 emitted_ = 0;
    u64 now_ns_ = 0;
};

/// Build a scenario from a spec string: a plain registry name, a
/// "replay:<path>" trace, or a '+'-composition per the grammar above.
/// This is the one entry point the runner, CLI and benches share.
[[nodiscard]] Result<std::unique_ptr<Scenario>> make_scenario(
    const std::string& spec, const ScenarioConfig& config,
    const Registry& registry = builtin_registry());

/// Parse just the composition grammar into track specs (exposed for tests).
[[nodiscard]] Result<std::vector<OverlayTrackSpec>> parse_compose_spec(const std::string& spec);

/// Human-readable grammar summary for CLI help output.
[[nodiscard]] std::string compose_grammar_help();

}  // namespace flowcam::workload
