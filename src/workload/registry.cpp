#include "workload/registry.hpp"

#include "workload/scenarios.hpp"

namespace flowcam::workload {

void Registry::add(const std::string& name, const std::string& description,
                   ScenarioFactory factory) {
    entries_[name] = Entry{description, std::move(factory)};
}

Result<std::unique_ptr<Scenario>> Registry::create(const std::string& name,
                                                   const ScenarioConfig& config) const {
    const auto it = entries_.find(name);
    if (it == entries_.end()) {
        std::string known;
        for (const auto& entry : entries_) {
            if (!known.empty()) known += ", ";
            known += entry.first;
        }
        return Status(StatusCode::kNotFound,
                      "unknown scenario '" + name + "' (known: " + known + ")");
    }
    return it->second.factory(config);
}

std::vector<std::string> Registry::names() const {
    std::vector<std::string> out;
    out.reserve(entries_.size());
    for (const auto& entry : entries_) out.push_back(entry.first);
    return out;
}

Result<std::string> Registry::describe(const std::string& name) const {
    const auto it = entries_.find(name);
    if (it == entries_.end()) {
        return Status(StatusCode::kNotFound, "unknown scenario '" + name + "'");
    }
    return it->second.description;
}

Registry& builtin_registry() {
    static Registry registry = [] {
        Registry r;
        register_builtin_scenarios(r);
        return r;
    }();
    return registry;
}

}  // namespace flowcam::workload
