#include "workload/experiment.hpp"

#include <algorithm>
#include <sstream>

#include "common/table_printer.hpp"
#include "common/thread_pool.hpp"
#include "shard/sharded_engine.hpp"
#include "workload/compose.hpp"
#include "workload/metrics.hpp"

namespace flowcam::workload {

Result<SweepAxis> parse_sweep_axis(const std::string& text) {
    const std::size_t eq = text.find('=');
    if (eq == std::string::npos || eq == 0) {
        return Status(StatusCode::kInvalidArgument,
                      "'" + text + "' is not a sweep axis; expected key=v1,v2,...");
    }
    SweepAxis axis;
    axis.key = text.substr(0, eq);
    std::size_t start = eq + 1;
    while (true) {
        const std::size_t comma = text.find(',', start);
        const std::string value =
            text.substr(start, comma == std::string::npos ? std::string::npos : comma - start);
        if (value.empty()) {
            return Status(StatusCode::kInvalidArgument,
                          "empty value in sweep axis '" + text + "'");
        }
        axis.values.push_back(value);
        if (comma == std::string::npos) break;
        start = comma + 1;
    }
    return axis;
}

Result<Experiment> Experiment::plan(ExperimentSpec spec) {
    if (spec.scenarios.empty()) {
        return Status(StatusCode::kInvalidArgument, "experiment needs at least one scenario");
    }
    const ConfigPatch& patch = ConfigPatch::registry();
    // Validate eagerly against a scratch tree so a bad key or value fails the
    // whole plan with a typed error instead of poisoning N cells at run time.
    ConfigTree scratch = spec.base;
    for (const std::string& assignment : spec.overrides) {
        if (Status status = patch.apply_assignment(scratch, assignment); !status.is_ok()) {
            return status;
        }
    }
    for (std::size_t i = 0; i < spec.axes.size(); ++i) {
        const SweepAxis& axis = spec.axes[i];
        if (axis.values.empty()) {
            return Status(StatusCode::kInvalidArgument,
                          "sweep axis '" + axis.key + "' has no values");
        }
        // A repeated axis key would silently let the later axis win while
        // the grid's lead columns still claim the earlier one's values —
        // results attributed to configs that never ran.
        for (std::size_t j = 0; j < i; ++j) {
            if (spec.axes[j].key == axis.key) {
                return Status(StatusCode::kInvalidArgument,
                              "sweep axis '" + axis.key + "' appears twice");
            }
        }
        for (const std::string& value : axis.values) {
            if (Status status = patch.apply(scratch, axis.key, value); !status.is_ok()) {
                return status;
            }
        }
    }

    Experiment experiment(std::move(spec));
    // Row-major grid: scenarios outermost, the last axis fastest — the cell
    // order (and with it every rendering) is a pure function of the spec.
    u64 grid = 1;
    for (const SweepAxis& axis : experiment.spec_.axes) grid *= axis.values.size();
    experiment.cells_.reserve(experiment.spec_.scenarios.size() * grid);
    for (const std::string& scenario : experiment.spec_.scenarios) {
        for (u64 point = 0; point < grid; ++point) {
            ExperimentCell cell;
            cell.index = experiment.cells_.size();
            cell.scenario = scenario;
            u64 remainder = point;
            u64 stride = grid;
            for (const SweepAxis& axis : experiment.spec_.axes) {
                stride /= axis.values.size();
                cell.assignments.emplace_back(axis.key, axis.values[remainder / stride]);
                remainder %= stride;
            }
            experiment.cells_.push_back(std::move(cell));
        }
    }
    return experiment;
}

Result<ScenarioMetrics> Experiment::run_cell(const ExperimentCell& cell,
                                             const Registry& registry,
                                             std::size_t intra_jobs) const {
    const ConfigPatch& patch = ConfigPatch::registry();
    ConfigTree tree = spec_.base;
    for (const std::string& assignment : spec_.overrides) {
        if (Status status = patch.apply_assignment(tree, assignment); !status.is_ok()) {
            return status;
        }
    }
    for (const auto& [key, value] : cell.assignments) {
        if (Status status = patch.apply(tree, key, value); !status.is_ok()) return status;
    }
    // Intensity schedules and fractional windows resolve against the actual
    // packet budget unless the caller pinned a horizon explicitly.
    ScenarioConfig resolved = tree.scenario;
    if (resolved.horizon_packets == 0) resolved.horizon_packets = tree.runner.packets;
    // Multi-cell sweeps run concurrently; give each cell its own trace /
    // sample artifacts so they don't clobber a shared output path.
    if (cells_.size() > 1 && tree.runner.obs.enabled()) {
        const std::string suffix = ".cell" + std::to_string(cell.index);
        tree.runner.obs.trace_path += suffix;
        tree.runner.obs.sample_path += suffix;
    }
    if (tree.runner.shard.active()) {
        // The sharded engine instantiates the spec per slice itself; jobs is
        // runtime parallelism only, so it is not part of the patched tree.
        tree.runner.shard.jobs = std::max(tree.runner.shard.jobs, intra_jobs);
        shard::ShardedEngine engine(tree.runner);
        return engine.run(cell.scenario, resolved, registry);
    }
    auto scenario = make_scenario(cell.scenario, resolved, registry);
    if (!scenario) return scenario.status();
    ScenarioRunner runner(tree.runner);
    return runner.run(*scenario.value());
}

std::vector<CellResult> Experiment::run(std::size_t jobs, const Registry& registry) const {
    std::vector<CellResult> results(cells_.size());
    // A one-cell "sweep" cannot use cell-level parallelism; hand the jobs
    // budget down so a sharded cell's lanes run on those threads instead.
    const std::size_t intra_jobs = cells_.size() == 1 ? jobs : 1;
    common::ThreadPool::parallel_for_indexed(cells_.size(), jobs, [&](std::size_t i) {
        results[i].cell = cells_[i];
        auto metrics = run_cell(cells_[i], registry, intra_jobs);
        if (metrics) {
            results[i].status = Status::ok();
            results[i].metrics = std::move(metrics).value();
        } else {
            results[i].status = metrics.status();
            results[i].metrics.scenario = cells_[i].scenario;  // identifiable rows.
        }
    });
    return results;
}

std::vector<std::string> Experiment::lead_columns() const {
    std::vector<std::string> lead{"cell"};
    for (const SweepAxis& axis : spec_.axes) lead.push_back(axis.key);
    // Failed cells serialize default-zero metrics; the in-row status keeps
    // them distinguishable from measured zeros in every rendering (the CI
    // grid artifact is uploaded even when cells failed).
    lead.push_back("status");
    return lead;
}

std::vector<std::string> Experiment::cell_lead(const CellResult& result) const {
    std::vector<std::string> lead{std::to_string(result.cell.index)};
    for (const auto& [key, value] : result.cell.assignments) lead.push_back(value);
    lead.push_back(result.status.is_ok() ? "ok" : result.status.to_string());
    return lead;
}

std::string Experiment::table(const std::vector<CellResult>& results) const {
    std::vector<std::string> headers = lead_columns();
    for (const MetricField& field : metric_schema()) {
        if (field.grid) headers.push_back(field.name);
    }
    TablePrinter table(std::move(headers));
    for (const CellResult& result : results) {
        std::vector<std::string> row = cell_lead(result);
        for (const MetricField& field : metric_schema()) {
            if (field.grid) row.push_back(metric_text(field, result.metrics));
        }
        table.add_row(std::move(row));
    }
    std::ostringstream out;
    table.print(out, "Experiment grid: " + std::to_string(results.size()) + " cell(s)");
    return out.str();
}

std::string Experiment::csv(const std::vector<CellResult>& results) const {
    std::string out = metrics_csv_header(lead_columns()) + "\n";
    for (const CellResult& result : results) {
        out += metrics_csv_row(result.metrics, cell_lead(result)) + "\n";
    }
    return out;
}

std::string Experiment::jsonl(const std::vector<CellResult>& results) const {
    const std::vector<std::string> columns = lead_columns();
    std::string out;
    for (const CellResult& result : results) {
        std::vector<std::pair<std::string, std::string>> lead{{"bench", "experiment"}};
        const std::vector<std::string> values = cell_lead(result);
        for (std::size_t i = 0; i < columns.size(); ++i) {
            lead.emplace_back(columns[i], values[i]);
        }
        out += metrics_json_object(result.metrics, lead) + "\n";
    }
    return out;
}

}  // namespace flowcam::workload
