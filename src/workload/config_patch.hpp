// ConfigPatch: a small field registry over the full run-an-experiment config
// tree — RunnerConfig (and inside it AnalyzerConfig -> FlowLutConfig) plus
// ScenarioConfig — so the CLI, the benches and the tests all patch configs
// through one declarative surface instead of bespoke flag plumbing:
//
//   lut.cam_capacity=4096  lut.balance=weighted-hash  lut.weight_a=0.7
//   runner.cycles_per_packet=3  runner.time_scale=1e6  scenario.attack=0.8
//
// Every registered key carries a type label, a doc line, a parser with a
// typed error message (bad value -> the expected form), and a printer (the
// current value, round-trippable through the parser). Unknown keys fail with
// a nearest-match suggestion; `scenario_runner --list-keys` prints the whole
// registry with defaults and docs.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "workload/runner.hpp"
#include "workload/scenario.hpp"

namespace flowcam::workload {

/// The full config tree one experiment cell runs with.
struct ConfigTree {
    RunnerConfig runner;      ///< incl. analyzer -> lut subtrees.
    ScenarioConfig scenario;  ///< seed, attack shape, generator knobs.
};

struct ConfigField {
    std::string key;   ///< dotted path, e.g. "lut.cam_capacity".
    std::string type;  ///< expected form, e.g. "u64", "fraction", "enum(a|b)".
    std::string doc;
    std::function<Status(ConfigTree&, const std::string&)> apply;  ///< parse + assign.
    std::function<std::string(const ConfigTree&)> print;           ///< round-trippable.
};

class ConfigPatch {
  public:
    /// The process-wide registry of every patchable field.
    [[nodiscard]] static const ConfigPatch& registry();

    /// nullptr for unknown keys.
    [[nodiscard]] const ConfigField* find(const std::string& key) const;
    /// Sorted registered keys.
    [[nodiscard]] std::vector<std::string> keys() const;

    /// Apply one value; kNotFound (with a nearest-match suggestion) for
    /// unknown keys, kInvalidArgument (naming the expected form) for
    /// malformed values.
    [[nodiscard]] Status apply(ConfigTree& tree, const std::string& key,
                               const std::string& value) const;
    /// Apply one "key=value" assignment string.
    [[nodiscard]] Status apply_assignment(ConfigTree& tree, const std::string& assignment) const;

    /// Current value of `key` in `tree` ("" for unknown keys).
    [[nodiscard]] std::string print(const ConfigTree& tree, const std::string& key) const;

    /// --list-keys: aligned key / type / default / doc table (defaults from a
    /// default-constructed ConfigTree).
    [[nodiscard]] std::string list_keys() const;

    /// Closest registered key by edit distance, or "" when nothing is close
    /// enough to be a plausible typo.
    [[nodiscard]] std::string suggest(const std::string& key) const;

  private:
    ConfigPatch();

    std::map<std::string, ConfigField> fields_;  ///< sorted for stable listings.
};

}  // namespace flowcam::workload
