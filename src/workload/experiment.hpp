// Experiment: a declarative parameter study. N scenario specs (full compose
// grammar) crossed with M config axes (ConfigPatch keys, each with a value
// list) form a cartesian grid of cells; every cell runs one scenario through
// a fresh analyzer stack under its patched ConfigTree, on the shared
// ThreadPool when jobs > 1 — results come back in cell order, so the table,
// CSV and JSONL renderings are byte-identical to a serial run.
//
// Seeding is part of the cell's resolved config, never of the execution
// order: config-axis cells share the base scenario seed (byte-identical
// offered stream, so a CAM-depth sweep compares like with like); sweep
// `scenario.seed` itself to add replications.
//
// All three renderers read the one metric schema (workload/metrics.hpp):
// adding a metric is one registry line, and it shows up in JSONL, CSV and
// (when flagged) the terminal grid at once.
#pragma once

#include <string>
#include <vector>

#include "common/result.hpp"
#include "workload/config_patch.hpp"
#include "workload/registry.hpp"
#include "workload/runner.hpp"

namespace flowcam::workload {

/// One config axis: a ConfigPatch key with the values to sweep.
struct SweepAxis {
    std::string key;
    std::vector<std::string> values;
};

/// Parse "--sweep" text: `key=v1,v2,...` (at least one value).
[[nodiscard]] Result<SweepAxis> parse_sweep_axis(const std::string& text);

struct ExperimentSpec {
    ConfigTree base;
    /// Scenario specs (full grammar: names, compositions, replay:<path>).
    std::vector<std::string> scenarios;
    /// "key=value" patches applied to every cell before the axis values.
    std::vector<std::string> overrides;
    /// Config axes, crossed with each other and with `scenarios`.
    std::vector<SweepAxis> axes;
};

struct ExperimentCell {
    std::size_t index = 0;  ///< row-major: scenarios outermost, last axis fastest.
    std::string scenario;
    /// One (key, value) per axis, in axis order.
    std::vector<std::pair<std::string, std::string>> assignments;
};

struct CellResult {
    ExperimentCell cell;
    Status status = Status(StatusCode::kUnavailable, "not run");
    ScenarioMetrics metrics;  ///< valid when status.is_ok().
};

class Experiment {
  public:
    /// Validate the spec eagerly — every override and axis value must parse
    /// against the base tree (typed ConfigPatch errors), the scenario list
    /// must be non-empty — and expand the grid.
    [[nodiscard]] static Result<Experiment> plan(ExperimentSpec spec);

    [[nodiscard]] const ExperimentSpec& spec() const { return spec_; }
    [[nodiscard]] const std::vector<ExperimentCell>& cells() const { return cells_; }

    /// Run every cell; jobs > 1 uses the ThreadPool (one independent engine +
    /// Flow LUT per cell), results in cell order regardless of interleaving.
    [[nodiscard]] std::vector<CellResult> run(
        std::size_t jobs = 1, const Registry& registry = builtin_registry()) const;

    /// Run one cell: base tree + overrides + the cell's axis assignments,
    /// horizon resolved from the patched packet budget. A cell whose patched
    /// tree enables sharding (shard.lanes > 1) routes through the
    /// shard::ShardedEngine; `intra_jobs` threads then run its lanes (the
    /// single-cell `--jobs` reuse — thread count never changes results).
    [[nodiscard]] Result<ScenarioMetrics> run_cell(const ExperimentCell& cell,
                                                   const Registry& registry,
                                                   std::size_t intra_jobs = 1) const;

    /// The per-cell lead columns every renderer shares: "cell", then one
    /// column per axis key.
    [[nodiscard]] std::vector<std::string> lead_columns() const;

    // ---- Renderers (one metric schema; byte-stable across jobs) ----------
    /// Aligned terminal grid: lead columns + the schema's `grid` fields.
    [[nodiscard]] std::string table(const std::vector<CellResult>& results) const;
    /// Header + one row per cell over the full schema.
    [[nodiscard]] std::string csv(const std::vector<CellResult>& results) const;
    /// One JSON object per cell over the full schema.
    [[nodiscard]] std::string jsonl(const std::vector<CellResult>& results) const;

  private:
    explicit Experiment(ExperimentSpec spec) : spec_(std::move(spec)) {}

    [[nodiscard]] std::vector<std::string> cell_lead(const CellResult& result) const;

    ExperimentSpec spec_;
    std::vector<ExperimentCell> cells_;
};

}  // namespace flowcam::workload
