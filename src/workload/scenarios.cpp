#include "workload/scenarios.hpp"

#include <algorithm>
#include <cmath>

#include "workload/registry.hpp"

namespace flowcam::workload {

namespace {

net::TraceConfig background_config(const ScenarioConfig& config) {
    net::TraceConfig background = config.background;
    background.seed = config.seed;  // one seed pins the whole stream.
    return background;
}

}  // namespace

// ---- OverlayScenario skeleton ----------------------------------------------

OverlayScenario::OverlayScenario(const ScenarioConfig& config)
    : config_(config),
      background_(background_config(config)),
      gate_rng_(config.seed ^ 0x6A7Eull),
      clock_rng_(config.seed ^ 0xC10Cull),
      overlay_rng_(config.seed ^ 0x0E541ull) {}

double OverlayScenario::current_attack_fraction() const {
    return scheduled_fraction(config_.intensity, emitted_, config_.onset_packets,
                              effective_horizon(config_), config_.attack_fraction);
}

net::PacketRecord OverlayScenario::next() {
    net::PacketRecord record;
    const bool attack_on = emitted_ >= config_.onset_packets;
    if (attack_on && gate_rng_.chance(current_attack_fraction())) {
        record = overlay_packet(overlay_emitted_);
        ++overlay_emitted_;
    } else {
        record = background_.next();
    }
    ++emitted_;
    // One merged clock stamps every packet so the interleaved stream stays
    // strictly monotonic regardless of which source produced it.
    const double gap = -config_.background.mean_gap_ns * std::log(1.0 - clock_rng_.uniform());
    now_ns_ += static_cast<u64>(gap) + 1;
    record.timestamp_ns = now_ns_;
    return record;
}

// ---- baseline ---------------------------------------------------------------

BaselineScenario::BaselineScenario(const ScenarioConfig& config)
    : OverlayScenario([&] {
          ScenarioConfig no_attack = config;
          no_attack.attack_fraction = 0.0;  // the gate never fires.
          no_attack.intensity = {};         // ...even under a schedule.
          return no_attack;
      }()) {}

std::string BaselineScenario::description() const {
    return "calibrated Pitman-Yor background only (control arm, paper Fig. 6)";
}

net::PacketRecord BaselineScenario::overlay_packet(u64 /*k*/) {
    return {};  // unreachable: attack_fraction is forced to 0.
}

// ---- syn_flood --------------------------------------------------------------

SynFloodScenario::SynFloodScenario(const ScenarioConfig& config)
    : OverlayScenario(config),
      victim_(net::synth_tuple(kOverlayFlowBase, config.seed ^ 0xF100Dull)) {}

std::string SynFloodScenario::description() const {
    return "DDoS SYN flood: every overlay packet is a new spoofed-source flow "
           "to one victim (insert-path worst case)";
}

net::PacketRecord SynFloodScenario::overlay_packet(u64 k) {
    net::PacketRecord record;
    record.tuple.src_ip = net::synth_public_ip(overlay_rng());
    record.tuple.src_port = net::synth_ephemeral_port(overlay_rng());
    record.tuple.dst_ip = victim_.dst_ip;
    record.tuple.dst_port = victim_.dst_port;
    record.tuple.protocol = net::kProtoTcp;
    record.frame_bytes = 64;  // bare SYNs.
    record.flow_index = kOverlayFlowBase + k;  // never repeats: one-packet flows.
    return record;
}

// ---- port_scan --------------------------------------------------------------

PortScanScenario::PortScanScenario(const ScenarioConfig& config) : OverlayScenario(config) {
    const net::FiveTuple endpoints =
        net::synth_tuple(kOverlayFlowBase + 1, config.seed ^ 0x5CA9ull);
    scanner_ip_ = endpoints.src_ip;
    victim_ip_ = endpoints.dst_ip;
    sweep_width_ = std::clamp<u64>(config.pool_size, 1, 65535);
}

std::string PortScanScenario::description() const {
    return "one source sweeps dst ports on one victim host (event-engine and "
           "correlated-key insert stress)";
}

net::PacketRecord PortScanScenario::overlay_packet(u64 k) {
    const u64 probe = k % sweep_width_;
    net::PacketRecord record;
    record.tuple.src_ip = scanner_ip_;
    record.tuple.src_port = 54321;
    record.tuple.dst_ip = victim_ip_;
    record.tuple.dst_port = static_cast<u16>(1 + probe);
    record.tuple.protocol = net::kProtoTcp;
    record.frame_bytes = 64;
    record.flow_index = kOverlayFlowBase + probe;  // stable across sweep wraps.
    return record;
}

// ---- heavy_hitter -----------------------------------------------------------

HeavyHitterScenario::HeavyHitterScenario(const ScenarioConfig& config)
    : OverlayScenario(config) {
    const u64 elephants = std::max<u64>(config.elephant_count, 1);
    zipf_cdf_.reserve(elephants);
    double total = 0.0;
    for (u64 rank = 0; rank < elephants; ++rank) {
        total += 1.0 / std::pow(static_cast<double>(rank + 1), config.zipf_exponent);
        zipf_cdf_.push_back(total);
    }
    for (double& cumulative : zipf_cdf_) cumulative /= total;
}

std::string HeavyHitterScenario::description() const {
    return "Zipf-skewed elephant flows sending MTU frames over the background "
           "mice (byte concentration on few entries)";
}

net::PacketRecord HeavyHitterScenario::overlay_packet(u64 /*k*/) {
    const double u = overlay_rng().uniform();
    const auto it = std::lower_bound(zipf_cdf_.begin(), zipf_cdf_.end(), u);
    const u64 rank = static_cast<u64>(it - zipf_cdf_.begin());
    net::PacketRecord record;
    record.tuple = net::synth_tuple(kOverlayFlowBase + rank, config().seed);
    record.frame_bytes = 1500;
    record.flow_index = kOverlayFlowBase + rank;
    return record;
}

// ---- flash_crowd ------------------------------------------------------------

FlashCrowdScenario::FlashCrowdScenario(const ScenarioConfig& config)
    : OverlayScenario(config),
      victim_(net::synth_tuple(kOverlayFlowBase + 2, config.seed ^ 0xF1A5ull)) {}

std::string FlashCrowdScenario::description() const {
    return "sudden many-to-one surge: a client pool converges on one victim "
           "service after onset";
}

net::PacketRecord FlashCrowdScenario::overlay_packet(u64 /*k*/) {
    const u64 pool = std::max<u64>(config().pool_size, 1);
    const u64 client = overlay_rng().bounded(pool);
    const net::FiveTuple client_side =
        net::synth_tuple(kOverlayFlowBase + 3 + client, config().seed);
    net::PacketRecord record;
    record.tuple.src_ip = client_side.src_ip;
    record.tuple.src_port = client_side.src_port;
    record.tuple.dst_ip = victim_.dst_ip;
    record.tuple.dst_port = 443;
    record.tuple.protocol = net::kProtoTcp;
    record.frame_bytes = 576;  // request-sized.
    record.flow_index = kOverlayFlowBase + client;
    return record;
}

// ---- churn ------------------------------------------------------------------

ChurnScenario::ChurnScenario(const ScenarioConfig& config) : OverlayScenario(config) {}

std::string ChurnScenario::description() const {
    return "flow birth/death waves: the whole overlay population is replaced "
           "every wave (continuous retire+insert churn)";
}

net::PacketRecord ChurnScenario::overlay_packet(u64 k) {
    const u64 pool = std::max<u64>(config().pool_size, 1);
    const u64 wave_len = std::max<u64>(config().wave_packets, 1);
    wave_ = k / wave_len;
    const u64 flow = wave_ * pool + overlay_rng().bounded(pool);
    net::PacketRecord record;
    record.tuple = net::synth_tuple(kOverlayFlowBase + flow, config().seed);
    record.frame_bytes = 64;
    record.flow_index = kOverlayFlowBase + flow;
    return record;
}

// ---- registration -----------------------------------------------------------

void register_builtin_scenarios(Registry& registry) {
    const auto add = [&registry](const char* name, auto make) {
        ScenarioConfig probe;
        auto instance = make(probe);
        registry.add(name, instance->description(),
                     [make](const ScenarioConfig& config) -> Result<std::unique_ptr<Scenario>> {
                         return std::unique_ptr<Scenario>(make(config));
                     });
    };
    add("baseline", [](const ScenarioConfig& c) { return std::make_unique<BaselineScenario>(c); });
    add("syn_flood", [](const ScenarioConfig& c) { return std::make_unique<SynFloodScenario>(c); });
    add("port_scan", [](const ScenarioConfig& c) { return std::make_unique<PortScanScenario>(c); });
    add("heavy_hitter",
        [](const ScenarioConfig& c) { return std::make_unique<HeavyHitterScenario>(c); });
    add("flash_crowd",
        [](const ScenarioConfig& c) { return std::make_unique<FlashCrowdScenario>(c); });
    add("churn", [](const ScenarioConfig& c) { return std::make_unique<ChurnScenario>(c); });
}

}  // namespace flowcam::workload
