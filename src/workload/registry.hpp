// String-keyed scenario registry: name -> factory, so benches, tests and the
// CLI can enumerate and instantiate the whole catalogue without knowing the
// concrete generator types (the booksim2-style config-driven runner shape).
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "workload/scenario.hpp"

namespace flowcam::workload {

/// Factories are fallible: a scenario that needs external input (e.g. a
/// trace file) reports why it could not be built instead of dying.
using ScenarioFactory = std::function<Result<std::unique_ptr<Scenario>>(const ScenarioConfig&)>;

class Registry {
  public:
    /// Register `factory` under `name`; re-registering a name replaces the
    /// previous entry (latest wins, handy for test doubles).
    void add(const std::string& name, const std::string& description, ScenarioFactory factory);

    /// Instantiate a registered scenario; kNotFound names the known catalogue
    /// in the status message so CLI typos are self-diagnosing.
    [[nodiscard]] Result<std::unique_ptr<Scenario>> create(const std::string& name,
                                                           const ScenarioConfig& config) const;

    [[nodiscard]] bool contains(const std::string& name) const {
        return entries_.count(name) != 0;
    }
    /// Sorted scenario names (std::map keeps them ordered).
    [[nodiscard]] std::vector<std::string> names() const;
    [[nodiscard]] Result<std::string> describe(const std::string& name) const;
    [[nodiscard]] std::size_t size() const { return entries_.size(); }

  private:
    struct Entry {
        std::string description;
        ScenarioFactory factory;
    };
    std::map<std::string, Entry> entries_;
};

/// Process-wide registry preloaded with the builtin catalogue (baseline,
/// syn_flood, port_scan, heavy_hitter, flash_crowd, churn).
[[nodiscard]] Registry& builtin_registry();

}  // namespace flowcam::workload
