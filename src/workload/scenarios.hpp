// The builtin scenario catalogue: adversarial and phase-traffic overlays on
// the calibrated Pitman–Yor background trace.
//
// Every generator shares the OverlayScenario skeleton: one deterministic
// clock stamps all packets (exponential inter-arrival around the background
// mean), a warmup of `onset_packets` background-only packets lets the table
// fill realistically, then each subsequent packet is drawn from the overlay
// with probability `attack_fraction`. Overlay flows carry indices at or
// above kOverlayFlowBase so consumers can separate attack from background
// ground truth.
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "workload/scenario.hpp"

namespace flowcam::workload {
class Registry;

/// Shared skeleton: background + clock + overlay gate. Subclasses implement
/// overlay_packet(k) for the k-th overlay packet; timestamps are stamped by
/// the base so the merged stream is monotonic regardless of source.
class OverlayScenario : public Scenario {
  public:
    explicit OverlayScenario(const ScenarioConfig& config);

    net::PacketRecord next() final;

    [[nodiscard]] u64 overlay_emitted() const { return overlay_emitted_; }

    /// Composition entry point: draw the k-th overlay packet directly,
    /// bypassing this scenario's own background/gate/clock (a
    /// ComposedScenario owns those and stamps the timestamp itself).
    [[nodiscard]] net::PacketRecord compose_overlay(u64 k) {
        ++overlay_emitted_;
        return overlay_packet(k);
    }

    /// attack_fraction at the current stream position: the constant config
    /// value, or — when an IntensitySchedule is set — its value at
    /// normalized time t (0 at onset, 1 at the horizon, clamped beyond).
    [[nodiscard]] double current_attack_fraction() const;

  protected:
    /// The k-th overlay packet (timestamp is overwritten by the caller).
    [[nodiscard]] virtual net::PacketRecord overlay_packet(u64 k) = 0;

    [[nodiscard]] const ScenarioConfig& config() const { return config_; }
    /// Deterministic per-scenario RNG for overlay internals.
    [[nodiscard]] Xoshiro256& overlay_rng() { return overlay_rng_; }

  private:
    ScenarioConfig config_;
    net::TraceGenerator background_;
    Xoshiro256 gate_rng_;     ///< overlay-vs-background coin flips.
    Xoshiro256 clock_rng_;    ///< inter-arrival draws for the merged stream.
    Xoshiro256 overlay_rng_;  ///< handed to subclasses.
    u64 emitted_ = 0;
    u64 overlay_emitted_ = 0;
    u64 now_ns_ = 0;
};

/// `baseline` — the unmodified calibrated background; the control arm every
/// other scenario is compared against.
class BaselineScenario final : public OverlayScenario {
  public:
    explicit BaselineScenario(const ScenarioConfig& config);
    [[nodiscard]] std::string name() const override { return "baseline"; }
    [[nodiscard]] std::string description() const override;

  protected:
    [[nodiscard]] net::PacketRecord overlay_packet(u64 k) override;
};

/// `syn_flood` — every overlay packet is a brand-new spoofed source opening
/// a TCP connection to one victim: a massive wave of short-lived new flows,
/// the worst case for the insert path (new-flow ratio approaches
/// attack_fraction instead of the background's sub-10 % tail).
class SynFloodScenario final : public OverlayScenario {
  public:
    explicit SynFloodScenario(const ScenarioConfig& config);
    [[nodiscard]] std::string name() const override { return "syn_flood"; }
    [[nodiscard]] std::string description() const override;

  protected:
    [[nodiscard]] net::PacketRecord overlay_packet(u64 k) override;

  private:
    net::FiveTuple victim_;
};

/// `port_scan` — one scanner address sweeps `pool_size` destination ports on
/// one victim host (each probe is its own 5-tuple flow). Stresses the
/// analyzer's port-scan event engine and the insert path with correlated,
/// near-identical keys.
class PortScanScenario final : public OverlayScenario {
  public:
    explicit PortScanScenario(const ScenarioConfig& config);
    [[nodiscard]] std::string name() const override { return "port_scan"; }
    [[nodiscard]] std::string description() const override;

    [[nodiscard]] u32 scanner_ip() const { return scanner_ip_; }

  protected:
    [[nodiscard]] net::PacketRecord overlay_packet(u64 k) override;

  private:
    u32 scanner_ip_ = 0;
    u32 victim_ip_ = 0;
    u64 sweep_width_ = 0;
};

/// `heavy_hitter` — a fixed set of `elephant_count` elephant flows drawing
/// Zipf(zipf_exponent) sends MTU-sized frames while the background supplies
/// the mice: the classic elephant/mouse mix that concentrates bytes (and
/// update-block traffic) on a few table entries.
class HeavyHitterScenario final : public OverlayScenario {
  public:
    explicit HeavyHitterScenario(const ScenarioConfig& config);
    [[nodiscard]] std::string name() const override { return "heavy_hitter"; }
    [[nodiscard]] std::string description() const override;

  protected:
    [[nodiscard]] net::PacketRecord overlay_packet(u64 k) override;

  private:
    std::vector<double> zipf_cdf_;  ///< cumulative, normalized to 1.0.
};

/// `flash_crowd` — after onset, a pool of `pool_size` distinct clients all
/// converge on one victim service (many-to-one surge): many simultaneous
/// medium-lived flows that share one destination bucket neighborhood.
class FlashCrowdScenario final : public OverlayScenario {
  public:
    explicit FlashCrowdScenario(const ScenarioConfig& config);
    [[nodiscard]] std::string name() const override { return "flash_crowd"; }
    [[nodiscard]] std::string description() const override;

  protected:
    [[nodiscard]] net::PacketRecord overlay_packet(u64 k) override;

  private:
    net::FiveTuple victim_;
};

/// `churn` — flow birth/death waves: overlay packets draw uniformly from a
/// population of `pool_size` flows that is wholly replaced every
/// `wave_packets` overlay packets, emulating NAT rollover / DHCP churn that
/// continuously retires and inserts table entries.
class ChurnScenario final : public OverlayScenario {
  public:
    explicit ChurnScenario(const ScenarioConfig& config);
    [[nodiscard]] std::string name() const override { return "churn"; }
    [[nodiscard]] std::string description() const override;

    [[nodiscard]] u64 wave() const { return wave_; }

  protected:
    [[nodiscard]] net::PacketRecord overlay_packet(u64 k) override;

  private:
    u64 wave_ = 0;
};

/// Register the six builtin scenarios above into `registry`.
void register_builtin_scenarios(Registry& registry);

}  // namespace flowcam::workload
