// TraceReplayScenario: replay a captured packet trace (CSV or JSONL
// 5-tuples + timestamps, IPv4 and IPv6) through the Scenario interface, so
// real traces drive the same runner/bench/CLI machinery as the synthetic
// catalogue.
//
// Format, sniffed per line (blank lines and '#' comments are skipped, as is
// a leading CSV header line):
//
//   CSV:    timestamp_ns,src,dst,src_port,dst_port,protocol[,bytes]
//   JSONL:  {"ts":N,"src":"A","dst":"A","sport":N,"dport":N,
//            "proto":N|"tcp"|"udp"|"icmp","bytes":N}
//
// Addresses are dotted-quad IPv4 or colon-hex IPv6 (both endpoints must be
// the same family); IPv6 rows reach the Flow LUT through the 37-byte
// SixTuple key via PacketRecord::key_override. `bytes` defaults to 64.
// JSONL accepts the long key spellings (timestamp_ns/src_port/dst_port/
// protocol/frame_bytes) too.
//
// Records are sorted by timestamp and replayed in a loop: the stream is
// endless (the Scenario contract) with timestamps strictly increasing
// across loop boundaries. Flow indices are interned per distinct key in
// first-seen order — replayed traffic is "background" ground truth (indices
// below kOverlayFlowBase).
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.hpp"
#include "workload/scenario.hpp"

namespace flowcam::workload {

class TraceReplayScenario final : public Scenario {
  public:
    /// Read and parse `path`; kNotFound for an unreadable file,
    /// kInvalidArgument (with line number) for malformed rows or an empty
    /// trace.
    [[nodiscard]] static Result<std::unique_ptr<TraceReplayScenario>> load(
        const std::string& path, const ScenarioConfig& config);

    /// Parse an in-memory trace; `origin` names the source in name().
    [[nodiscard]] static Result<std::unique_ptr<TraceReplayScenario>> parse(
        std::string_view text, const std::string& origin, const ScenarioConfig& config);

    [[nodiscard]] std::string name() const override { return "replay:" + origin_; }
    [[nodiscard]] std::string description() const override;

    net::PacketRecord next() override;

    [[nodiscard]] u64 record_count() const { return records_.size(); }
    [[nodiscard]] u64 distinct_flows() const { return distinct_flows_; }
    /// Records containing an IPv6 (key_override) tuple.
    [[nodiscard]] u64 ipv6_records() const { return ipv6_records_; }

  private:
    TraceReplayScenario(std::string origin, std::vector<net::PacketRecord> records,
                        u64 distinct_flows, u64 ipv6_records, u64 loop_gap_ns);

    std::string origin_;
    std::vector<net::PacketRecord> records_;  ///< sorted by timestamp_ns.
    u64 distinct_flows_ = 0;
    u64 ipv6_records_ = 0;
    u64 loop_gap_ns_ = 1;  ///< inserted between the last and first record when looping.
    std::size_t cursor_ = 0;
    u64 loop_offset_ns_ = 0;
    u64 last_ns_ = 0;
};

}  // namespace flowcam::workload
