#include "workload/compose.hpp"

#include <cmath>
#include <cstdlib>
#include <fstream>

#include "common/flat_map.hpp"
#include "workload/replay.hpp"

namespace flowcam::workload {

namespace {

/// Decorrelate per-track seeds from the base seed (golden-ratio stream
/// offset + the shared splitmix finalizer) so two tracks of the same
/// generator type do not emit correlated tuples.
u64 track_seed(u64 base_seed, std::size_t track_index) {
    return common::U64MixHash{}(
        base_seed + (static_cast<u64>(track_index) + 1) * 0x9e3779b97f4a7c15ull);
}

/// Resolve a grammar position: fractions of the horizon up to 1.0, absolute
/// packet counts beyond.
u64 resolve_packets(double value, u64 horizon) {
    if (value <= 1.0) return static_cast<u64>(std::llround(value * static_cast<double>(horizon)));
    return static_cast<u64>(std::llround(value));
}

bool parse_double(const std::string& text, double& out) {
    if (text.empty()) return false;
    char* end = nullptr;
    out = std::strtod(text.c_str(), &end);
    return end == text.c_str() + text.size();
}

/// onset/offset: any finite non-negative position (fraction or packets).
bool parse_position(const std::string& text, double& out) {
    return parse_double(text, out) && std::isfinite(out) && out >= 0.0;
}

/// attack/ramp/pulse levels: a probability — "nan" and friends must not
/// slip through (NaN never compares < cumulative, silently disabling the
/// track instead of erroring).
bool parse_fraction(const std::string& text, double& out) {
    return parse_double(text, out) && std::isfinite(out) && out >= 0.0 && out <= 1.0;
}

/// Split `text` on `separator`, trimming nothing (the grammar has no spaces).
std::vector<std::string> split(const std::string& text, char separator) {
    std::vector<std::string> parts;
    std::size_t start = 0;
    while (true) {
        const std::size_t at = text.find(separator, start);
        parts.push_back(text.substr(start, at - start));
        if (at == std::string::npos) break;
        start = at + 1;
    }
    return parts;
}

Status bad_spec(const std::string& detail) {
    return Status(StatusCode::kInvalidArgument, detail + "\n" + compose_grammar_help());
}

}  // namespace

// ---- ComposedScenario -------------------------------------------------------

ComposedScenario::ComposedScenario(const ScenarioConfig& config, std::string display_name)
    : config_(config),
      display_name_(std::move(display_name)),
      background_([&] {
          net::TraceConfig background = config.background;
          background.seed = config.seed;  // one seed pins the whole stream.
          return background;
      }()),
      gate_rng_(config.seed ^ 0x6A7Eull),
      clock_rng_(config.seed ^ 0xC10Cull) {}

Result<std::unique_ptr<ComposedScenario>> ComposedScenario::create(
    const Registry& registry, const std::vector<OverlayTrackSpec>& specs,
    const ScenarioConfig& config, std::string display_name,
    std::unique_ptr<Scenario> background) {
    auto composed = std::unique_ptr<ComposedScenario>(
        new ComposedScenario(config, std::move(display_name)));
    composed->replay_background_ = std::move(background);
    const u64 horizon = effective_horizon(config);
    for (const OverlayTrackSpec& spec : specs) {
        if (spec.scenario == "baseline") continue;  // the implicit background.
        const std::size_t index = composed->tracks_.size();

        ScenarioConfig child_config = config;
        child_config.seed = track_seed(config.seed, index);
        child_config.intensity = {};  // the composer owns gating entirely.
        auto child = registry.create(spec.scenario, child_config);
        if (!child) return child.status();
        auto* overlay = dynamic_cast<OverlayScenario*>(child.value().get());
        if (overlay == nullptr) {
            return Status(StatusCode::kInvalidArgument,
                          "'" + spec.scenario +
                              "' is not an overlay generator and cannot be composed");
        }
        child.value().release();

        Track track;
        track.child.reset(overlay);
        track.onset = spec.onset < 0.0 ? config.onset_packets
                                       : resolve_packets(spec.onset, horizon);
        track.offset = spec.offset < 0.0 ? kNoOffset : resolve_packets(spec.offset, horizon);
        if (track.offset <= track.onset) {
            return Status(StatusCode::kInvalidArgument,
                          "'" + spec.scenario + "': offset must come after onset");
        }
        track.attack = spec.attack < 0.0 ? config.attack_fraction : spec.attack;
        track.intensity = spec.intensity;
        track.ramp_end = track.offset != kNoOffset ? track.offset : horizon;
        composed->tracks_.push_back(std::move(track));
    }
    return composed;
}

double ComposedScenario::fraction_of(const Track& track) const {
    if (emitted_ < track.onset || emitted_ >= track.offset) return 0.0;
    return scheduled_fraction(track.intensity, emitted_, track.onset, track.ramp_end,
                              track.attack);
}

double ComposedScenario::track_fraction(std::size_t i) const {
    return i < tracks_.size() ? fraction_of(tracks_[i]) : 0.0;
}

net::PacketRecord ComposedScenario::next() {
    net::PacketRecord record;
    // One gate draw per packet walks the cumulative track intensities; the
    // remainder of the unit interval belongs to the background.
    const double draw = gate_rng_.uniform();
    double cumulative = 0.0;
    Track* picked = nullptr;
    std::size_t picked_index = 0;
    for (std::size_t i = 0; i < tracks_.size(); ++i) {
        cumulative += fraction_of(tracks_[i]);
        if (draw < cumulative) {
            picked = &tracks_[i];
            picked_index = i;
            break;
        }
    }
    if (picked != nullptr) {
        record = picked->child->compose_overlay(picked->emitted);
        ++picked->emitted;
        // Remap into the track's private index range so composed overlays
        // keep disjoint ground truth (see kOverlayTrackStride).
        if (record.flow_index >= kOverlayFlowBase) {
            record.flow_index = kOverlayFlowBase + picked_index * kOverlayTrackStride +
                                (record.flow_index - kOverlayFlowBase);
        }
    } else {
        record = replay_background_ != nullptr ? replay_background_->next()
                                               : background_.next();
    }
    ++emitted_;
    if (replay_background_ != nullptr) {
        // Replay-as-background: captured packets keep their own timing;
        // overlay packets (and any replay packet the overlays pushed past)
        // slot in right after the previous packet — attack traffic arrives
        // at line rate between trace packets, and the merged stream stays
        // strictly monotonic.
        if (picked != nullptr || record.timestamp_ns <= now_ns_) {
            record.timestamp_ns = now_ns_ + 1;
        }
        now_ns_ = record.timestamp_ns;
    } else {
        // One merged clock stamps every packet so the interleaved stream
        // stays strictly monotonic regardless of which source produced it.
        const double gap =
            -config_.background.mean_gap_ns * std::log(1.0 - clock_rng_.uniform());
        now_ns_ += static_cast<u64>(gap) + 1;
        record.timestamp_ns = now_ns_;
    }
    return record;
}

std::string ComposedScenario::description() const {
    return "composed: " + std::to_string(tracks_.size()) +
           " overlay track(s) with onset/offset windows and intensity schedules over " +
           (replay_background_ != nullptr ? "a replayed trace background"
                                          : "the calibrated background");
}

// ---- spec grammar -----------------------------------------------------------

Result<std::vector<OverlayTrackSpec>> parse_compose_spec(const std::string& spec) {
    std::vector<OverlayTrackSpec> tracks;
    for (const std::string& element : split(spec, '+')) {
        if (element.empty()) return bad_spec("empty element in '" + spec + "'");
        OverlayTrackSpec track;
        const std::size_t at = element.find('@');
        track.scenario = element.substr(0, at);
        if (track.scenario.rfind("replay:", 0) == 0) {
            return bad_spec("trace replay cannot be an overlay element");
        }
        if (at != std::string::npos) {
            for (const std::string& opt : split(element.substr(at + 1), ',')) {
                const std::size_t eq = opt.find('=');
                if (eq == std::string::npos) {
                    return bad_spec("option '" + opt + "' is not key=value");
                }
                const std::string key = opt.substr(0, eq);
                const std::string value = opt.substr(eq + 1);
                const std::vector<std::string> parts = split(value, ':');
                double a = 0.0, b = 0.0, c = 0.0;
                if (key == "onset" || key == "offset") {
                    if (parts.size() != 1 || !parse_position(parts[0], a)) {
                        return bad_spec("bad value in '" + opt + "'");
                    }
                    (key == "onset" ? track.onset : track.offset) = a;
                } else if (key == "attack") {
                    if (parts.size() != 1 || !parse_fraction(parts[0], a)) {
                        return bad_spec("attack wants a fraction in [0,1] in '" + opt + "'");
                    }
                    track.attack = a;
                } else if (key == "ramp") {
                    if (parts.size() != 2 || !parse_fraction(parts[0], a) ||
                        !parse_fraction(parts[1], b)) {
                        return bad_spec("ramp wants 'ramp=FROM:TO', fractions in [0,1], in '" +
                                        opt + "'");
                    }
                    track.intensity = IntensitySchedule::ramp(a, b);
                } else if (key == "pulse") {
                    if (parts.size() != 3 || !parse_fraction(parts[0], a) ||
                        !parse_fraction(parts[1], b) || !parse_double(parts[2], c) ||
                        !std::isfinite(c) || c < 1.0) {
                        return bad_spec("pulse wants 'pulse=LO:HI:COUNT' in '" + opt + "'");
                    }
                    track.intensity =
                        IntensitySchedule::pulse(a, b, static_cast<u64>(std::llround(c)));
                } else {
                    return bad_spec("unknown option '" + key + "'");
                }
            }
        }
        tracks.push_back(std::move(track));
    }
    return tracks;
}

Result<std::unique_ptr<Scenario>> make_scenario(const std::string& spec,
                                                const ScenarioConfig& config,
                                                const Registry& registry) {
    if (spec.rfind("replay:", 0) == 0) {
        // A leading replay element: the whole spec is a plain trace replay,
        // or — with a '+' — the trace becomes the *background* of a
        // composition ("replay:trace.csv+syn_flood@onset=0.3"). A '+' could
        // also be part of the file name, so the whole-spec path wins when
        // that file exists (the pre-composition behavior); otherwise the
        // path is everything up to the first '+'.
        std::size_t plus = spec.find('+');
        if (plus != std::string::npos && std::ifstream(spec.substr(7)).good()) {
            plus = std::string::npos;
        }
        auto replay = TraceReplayScenario::load(
            spec.substr(7, plus == std::string::npos ? std::string::npos : plus - 7), config);
        if (!replay) return replay.status();
        if (plus == std::string::npos) {
            return std::unique_ptr<Scenario>(std::move(replay).value());
        }
        auto tracks = parse_compose_spec(spec.substr(plus + 1));
        if (!tracks) return tracks.status();
        auto composed = ComposedScenario::create(registry, tracks.value(), config, spec,
                                                 std::move(replay).value());
        if (!composed) return composed.status();
        return std::unique_ptr<Scenario>(std::move(composed).value());
    }
    if (!config.trace_path.empty() && spec == "trace_replay") {
        auto replay = TraceReplayScenario::load(config.trace_path, config);
        if (!replay) return replay.status();
        return std::unique_ptr<Scenario>(std::move(replay).value());
    }
    if (spec.find('+') == std::string::npos && spec.find('@') == std::string::npos) {
        return registry.create(spec, config);
    }
    auto tracks = parse_compose_spec(spec);
    if (!tracks) return tracks.status();
    auto composed = ComposedScenario::create(registry, tracks.value(), config, spec);
    if (!composed) return composed.status();
    return std::unique_ptr<Scenario>(std::move(composed).value());
}

std::string compose_grammar_help() {
    return "scenario spec grammar:\n"
           "  spec     := element ('+' element)*     e.g. flash_crowd+syn_flood@onset=0.3\n"
           "  element  := name ('@' opt (',' opt)*)?\n"
           "  opt      := onset=F | offset=F | attack=F | ramp=F:F | pulse=F:F:N\n"
           "  special  := replay:<path>              CSV/JSONL trace replay; whole spec,\n"
           "              or first element => the trace is the composition's background\n"
           "F <= 1.0 for onset/offset is a fraction of the run, > 1.0 absolute packets.\n"
           "ramp=A:B ramps the element's attack fraction from A at onset to B at its\n"
           "offset (or run end); pulse=LO:HI:N alternates N square pulses. Every element\n"
           "is an independent overlay on the shared background (calibrated synthetic, or\n"
           "a replayed trace via a leading replay:<path> element); 'baseline' elements\n"
           "are dropped. Same seed => byte-identical composed stream.";
}

}  // namespace flowcam::workload
