#include "workload/replay.hpp"

#include <arpa/inet.h>

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <fstream>
#include <optional>
#include <sstream>
#include <unordered_map>

#include "net/ipv6.hpp"

namespace flowcam::workload {

namespace {

/// One parsed row before flow-index interning.
struct ParsedRow {
    net::PacketRecord record;
    std::string key_bytes;  ///< serialized exact-match key (interning handle).
    bool ipv6 = false;
};

struct ParsedAddress {
    bool ipv6 = false;
    u32 v4 = 0;
    net::Ipv6Address v6;
};

std::string_view trim(std::string_view text) {
    while (!text.empty() && std::isspace(static_cast<unsigned char>(text.front())) != 0)
        text.remove_prefix(1);
    while (!text.empty() && std::isspace(static_cast<unsigned char>(text.back())) != 0)
        text.remove_suffix(1);
    return text;
}

std::optional<ParsedAddress> parse_address(std::string_view text) {
    const std::string owned(trim(text));
    ParsedAddress out;
    if (owned.find(':') != std::string::npos) {
        u8 octets[16];
        if (inet_pton(AF_INET6, owned.c_str(), octets) != 1) return std::nullopt;
        out.ipv6 = true;
        std::copy(std::begin(octets), std::end(octets), out.v6.octets.begin());
        return out;
    }
    u8 octets[4];
    if (inet_pton(AF_INET, owned.c_str(), octets) != 1) return std::nullopt;
    out.v4 = (u32{octets[0]} << 24) | (u32{octets[1]} << 16) | (u32{octets[2]} << 8) |
             u32{octets[3]};
    return out;
}

std::optional<u64> parse_u64(std::string_view text) {
    const std::string owned(trim(text));
    // strtoull silently wraps negative input into huge values; require a
    // leading digit so "-5" is a malformed field, not year-584-billion.
    if (owned.empty() || std::isdigit(static_cast<unsigned char>(owned.front())) == 0) {
        return std::nullopt;
    }
    char* end = nullptr;
    const u64 value = std::strtoull(owned.c_str(), &end, 10);
    if (end != owned.c_str() + owned.size()) return std::nullopt;
    return value;
}

std::optional<u64> parse_protocol(std::string_view text) {
    std::string owned(trim(text));
    std::transform(owned.begin(), owned.end(), owned.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    if (owned == "tcp") return net::kProtoTcp;
    if (owned == "udp") return net::kProtoUdp;
    if (owned == "icmp") return net::kProtoIcmp;
    return parse_u64(owned);
}

/// Extract the raw value of `"key":...` from a flat one-line JSON object;
/// quoted values are returned without the quotes. Good enough for the
/// trace format above — not a general JSON parser.
std::optional<std::string> json_field(std::string_view line, std::string_view key) {
    const std::string needle = "\"" + std::string(key) + "\"";
    std::size_t at = line.find(needle);
    if (at == std::string_view::npos) return std::nullopt;
    at = line.find(':', at + needle.size());
    if (at == std::string_view::npos) return std::nullopt;
    std::string_view rest = trim(line.substr(at + 1));
    if (rest.empty()) return std::nullopt;
    if (rest.front() == '"') {
        const std::size_t close = rest.find('"', 1);
        if (close == std::string_view::npos) return std::nullopt;
        return std::string(rest.substr(1, close - 1));
    }
    const std::size_t end = rest.find_first_of(",}");
    return std::string(trim(rest.substr(0, end)));
}

std::optional<std::string> json_field_any(std::string_view line,
                                          std::initializer_list<std::string_view> keys) {
    for (const std::string_view key : keys) {
        if (auto value = json_field(line, key)) return value;
    }
    return std::nullopt;
}

/// Assemble a row from its parsed fields; shared by the CSV and JSONL paths.
Result<ParsedRow> build_row(u64 timestamp_ns, const ParsedAddress& src, const ParsedAddress& dst,
                            u64 src_port, u64 dst_port, u64 protocol, u64 bytes) {
    if (src.ipv6 != dst.ipv6) {
        return Status(StatusCode::kInvalidArgument, "mixed IPv4/IPv6 endpoints in one record");
    }
    if (src_port > 0xFFFF || dst_port > 0xFFFF || protocol > 0xFF) {
        return Status(StatusCode::kInvalidArgument, "port or protocol out of range");
    }
    ParsedRow row;
    row.record.timestamp_ns = timestamp_ns;
    row.record.frame_bytes = static_cast<u16>(std::clamp<u64>(bytes, 1, 0xFFFF));
    row.record.tuple.src_port = static_cast<u16>(src_port);
    row.record.tuple.dst_port = static_cast<u16>(dst_port);
    row.record.tuple.protocol = static_cast<u8>(protocol);
    row.ipv6 = src.ipv6;
    if (src.ipv6) {
        net::SixTuple six;
        six.src_ip = src.v6;
        six.dst_ip = dst.v6;
        six.src_port = row.record.tuple.src_port;
        six.dst_port = row.record.tuple.dst_port;
        six.protocol = row.record.tuple.protocol;
        row.record.key_override = six.to_ntuple();
        const auto view = row.record.key_override.view();
        row.key_bytes.assign(view.begin(), view.end());
    } else {
        row.record.tuple.src_ip = src.v4;
        row.record.tuple.dst_ip = dst.v4;
        const auto bytes_v4 = row.record.tuple.key_bytes();
        row.key_bytes.assign(bytes_v4.begin(), bytes_v4.end());
    }
    return row;
}

Result<ParsedRow> parse_csv_row(std::string_view line) {
    std::vector<std::string_view> fields;
    std::size_t start = 0;
    while (true) {
        const std::size_t comma = line.find(',', start);
        fields.push_back(trim(line.substr(start, comma - start)));
        if (comma == std::string_view::npos) break;
        start = comma + 1;
    }
    if (fields.size() < 6 || fields.size() > 7) {
        return Status(StatusCode::kInvalidArgument,
                      "expected timestamp_ns,src,dst,src_port,dst_port,protocol[,bytes]");
    }
    const auto timestamp = parse_u64(fields[0]);
    const auto src = parse_address(fields[1]);
    const auto dst = parse_address(fields[2]);
    const auto src_port = parse_u64(fields[3]);
    const auto dst_port = parse_u64(fields[4]);
    const auto protocol = parse_protocol(fields[5]);
    const auto bytes = fields.size() == 7 ? parse_u64(fields[6]) : std::optional<u64>{64};
    if (!timestamp || !src || !dst || !src_port || !dst_port || !protocol || !bytes) {
        return Status(StatusCode::kInvalidArgument, "malformed CSV field");
    }
    return build_row(*timestamp, *src, *dst, *src_port, *dst_port, *protocol, *bytes);
}

Result<ParsedRow> parse_jsonl_row(std::string_view line) {
    const auto timestamp_raw = json_field_any(line, {"ts", "timestamp_ns"});
    const auto src_raw = json_field(line, "src");
    const auto dst_raw = json_field(line, "dst");
    const auto src_port_raw = json_field_any(line, {"sport", "src_port"});
    const auto dst_port_raw = json_field_any(line, {"dport", "dst_port"});
    const auto protocol_raw = json_field_any(line, {"proto", "protocol"});
    const auto bytes_raw = json_field_any(line, {"bytes", "frame_bytes"});
    if (!timestamp_raw || !src_raw || !dst_raw || !src_port_raw || !dst_port_raw ||
        !protocol_raw) {
        return Status(StatusCode::kInvalidArgument,
                      "JSONL record needs ts, src, dst, sport, dport, proto");
    }
    const auto timestamp = parse_u64(*timestamp_raw);
    const auto src = parse_address(*src_raw);
    const auto dst = parse_address(*dst_raw);
    const auto src_port = parse_u64(*src_port_raw);
    const auto dst_port = parse_u64(*dst_port_raw);
    const auto protocol = parse_protocol(*protocol_raw);
    const auto bytes = bytes_raw ? parse_u64(*bytes_raw) : std::optional<u64>{64};
    if (!timestamp || !src || !dst || !src_port || !dst_port || !protocol || !bytes) {
        return Status(StatusCode::kInvalidArgument, "malformed JSONL field");
    }
    return build_row(*timestamp, *src, *dst, *src_port, *dst_port, *protocol, *bytes);
}

}  // namespace

Result<std::unique_ptr<TraceReplayScenario>> TraceReplayScenario::load(
    const std::string& path, const ScenarioConfig& config) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        return Status(StatusCode::kNotFound, "cannot open trace file '" + path + "'");
    }
    std::ostringstream text;
    text << in.rdbuf();
    return parse(text.str(), path, config);
}

Result<std::unique_ptr<TraceReplayScenario>> TraceReplayScenario::parse(
    std::string_view text, const std::string& origin, const ScenarioConfig& config) {
    std::vector<ParsedRow> rows;
    u64 line_no = 0;
    bool header_skipped = false;
    while (!text.empty()) {
        const std::size_t newline = text.find('\n');
        std::string_view line = trim(text.substr(0, newline));
        text.remove_prefix(newline == std::string_view::npos ? text.size() : newline + 1);
        ++line_no;
        if (line.empty() || line.front() == '#') continue;
        // Tolerate exactly one leading CSV header line, recognized by its
        // documented first column — a malformed first *data* row must still
        // be reported, not silently classified as "the header".
        if (!header_skipped && rows.empty() &&
            (line.rfind("timestamp_ns,", 0) == 0 || line.rfind("ts,", 0) == 0)) {
            header_skipped = true;
            continue;
        }
        auto row = line.front() == '{' ? parse_jsonl_row(line) : parse_csv_row(line);
        if (!row) {
            return Status(row.status().code(), origin + ":" + std::to_string(line_no) + ": " +
                                                   row.status().message());
        }
        rows.push_back(std::move(row.value()));
    }
    if (rows.empty()) {
        return Status(StatusCode::kInvalidArgument, "empty trace '" + origin + "'");
    }

    std::stable_sort(rows.begin(), rows.end(), [](const ParsedRow& a, const ParsedRow& b) {
        return a.record.timestamp_ns < b.record.timestamp_ns;
    });

    // Intern flow indices per distinct key, in first-seen (time) order.
    std::unordered_map<std::string, u64> flow_of_key;
    std::vector<net::PacketRecord> records;
    records.reserve(rows.size());
    u64 ipv6_records = 0;
    for (ParsedRow& row : rows) {
        const auto [it, inserted] = flow_of_key.try_emplace(row.key_bytes, flow_of_key.size());
        row.record.flow_index = it->second;
        if (row.ipv6) ++ipv6_records;
        records.push_back(std::move(row.record));
    }

    const u64 loop_gap =
        static_cast<u64>(std::max(config.background.mean_gap_ns, 1.0));
    return std::unique_ptr<TraceReplayScenario>(new TraceReplayScenario(
        origin, std::move(records), flow_of_key.size(), ipv6_records, loop_gap));
}

TraceReplayScenario::TraceReplayScenario(std::string origin,
                                         std::vector<net::PacketRecord> records,
                                         u64 distinct_flows, u64 ipv6_records, u64 loop_gap_ns)
    : origin_(std::move(origin)),
      records_(std::move(records)),
      distinct_flows_(distinct_flows),
      ipv6_records_(ipv6_records),
      loop_gap_ns_(loop_gap_ns) {}

std::string TraceReplayScenario::description() const {
    return "replay of " + std::to_string(records_.size()) + " captured records (" +
           std::to_string(distinct_flows_) + " flows, " + std::to_string(ipv6_records_) +
           " IPv6), looped endlessly";
}

net::PacketRecord TraceReplayScenario::next() {
    net::PacketRecord record = records_[cursor_];
    record.timestamp_ns += loop_offset_ns_;
    // The Scenario contract is strictly increasing timestamps; captured
    // traces may carry duplicates, so nudge those forward.
    if (record.timestamp_ns <= last_ns_) record.timestamp_ns = last_ns_ + 1;
    last_ns_ = record.timestamp_ns;
    if (++cursor_ == records_.size()) {
        cursor_ = 0;
        loop_offset_ns_ = last_ns_ + loop_gap_ns_ - records_.front().timestamp_ns;
    }
    return record;
}

}  // namespace flowcam::workload
