#include "workload/metrics.hpp"

#include <charconv>
#include <cstdio>

#include "common/table_printer.hpp"

namespace flowcam::workload {

namespace {

using M = ScenarioMetrics;

MetricField str_field(const char* name, const char* doc, std::string M::* member) {
    return {name, "", doc, MetricKind::kString, true, 0, member, nullptr, nullptr, nullptr};
}
MetricField u64_field(const char* name, const char* unit, const char* doc, u64 M::* member,
                      bool grid = false) {
    return {name, unit, doc, MetricKind::kU64, grid, 0, nullptr, member, nullptr, nullptr};
}
MetricField dbl_field(const char* name, const char* unit, const char* doc, double M::* member,
                      bool grid = false, int decimals = 2) {
    return {name, unit, doc, MetricKind::kDouble, grid, decimals, nullptr, nullptr, member,
            nullptr};
}
MetricField bool_field(const char* name, const char* doc, bool M::* member) {
    return {name, "", doc, MetricKind::kBool, false, 0, nullptr, nullptr, nullptr, member};
}

}  // namespace

const std::vector<MetricField>& metric_schema() {
    static const std::vector<MetricField> schema = {
        str_field("scenario", "the scenario spec this row measured", &M::scenario),
        // Offered stream (ground truth from the generator).
        u64_field("packets", "pkts", "packets offered into the analyzer", &M::packets),
        u64_field("bytes", "bytes", "frame bytes offered", &M::bytes),
        u64_field("distinct_flows", "flows", "distinct ground-truth flows offered",
                  &M::distinct_flows, /*grid=*/true),
        u64_field("overlay_packets", "pkts", "packets drawn from attack overlays",
                  &M::overlay_packets),
        u64_field("trace_span_ns", "ns", "last minus first offered timestamp (scaled time)",
                  &M::trace_span_ns),
        // Flow LUT outcome.
        u64_field("completions", "pkts", "descriptors retired by the Flow LUT",
                  &M::completions),
        u64_field("cam_hits", "pkts", "answered at the sequencer CAM stage", &M::cam_hits,
                  /*grid=*/true),
        u64_field("lu1_hits", "pkts", "answered by the first memory lookup", &M::lu1_hits,
                  /*grid=*/true),
        u64_field("lu2_hits", "pkts", "answered by the redirected second lookup", &M::lu2_hits,
                  /*grid=*/true),
        u64_field("new_flows", "flows", "inserts (first packet of a flow)", &M::new_flows,
                  /*grid=*/true),
        // Three distinct fates for a packet under pressure — do not conflate:
        //   drops             lost for good: no table slot was available (or
        //                     admission said no); the packet still retires,
        //                     but with an invalid FID and no flow record.
        //   buffer_retries    not lost at all: the packet buffer was full (or
        //                     a fault storm vetoed the feed), the source held
        //                     the frame and re-offered it next cycle.
        //   admission_rejects the policy's share of drops: new flows turned
        //                     away on purpose to protect existing flows
        //                     (always a subset of drops).
        u64_field("drops", "pkts",
                  "packets retired with an invalid FID because no table slot was available "
                  "or admission rejected the new flow — the only fate that loses data",
                  &M::drops, /*grid=*/true),
        u64_field("buffer_retries", "pkts",
                  "rejected feed_record calls while the packet buffer was full (or a fault "
                  "storm vetoed the feed); the source holds the frame and re-offers it, so "
                  "unlike drops nothing is lost",
                  &M::buffer_retries),
        u64_field("flows_expired", "flows", "records evicted by the idle-timeout scan",
                  &M::flows_expired, /*grid=*/true),
        u64_field("hash_batches", "batches",
                  "multi-key hash batches prepared by the batched source (lut.batch > 0); "
                  "the one mode-dependent field — everything else is byte-identical to "
                  "scalar dispatch",
                  &M::hash_batches),
        // Descriptor latency (flight recorder; zero when obs is off).
        u64_field("lat_p50_ns", "ns", "median offer->completion latency (obs only)",
                  &M::lat_p50_ns),
        u64_field("lat_p95_ns", "ns", "p95 offer->completion latency (obs only)",
                  &M::lat_p95_ns),
        u64_field("lat_p99_ns", "ns", "p99 offer->completion latency (obs only)",
                  &M::lat_p99_ns),
        u64_field("lat_max_ns", "ns", "max offer->completion latency (obs only)",
                  &M::lat_max_ns),
        // Analyzer events.
        u64_field("events_port_scan", "events", "port-scan events raised", &M::events_port_scan),
        u64_field("events_heavy_hitter", "events", "heavy-hitter events raised",
                  &M::events_heavy_hitter),
        u64_field("events_table_pressure", "events", "table-pressure events raised",
                  &M::events_table_pressure),
        u64_field("events_flow_expired", "events", "flow-expired events raised",
                  &M::events_flow_expired),
        // Timing.
        u64_field("cycles", "cycles", "system-clock cycles simulated", &M::cycles),
        bool_field("drained", "every offered packet retired within the cycle budget",
                   &M::drained),
        dbl_field("new_flow_ratio", "ratio", "new flows / completions (paper's B/A)",
                  &M::new_flow_ratio, /*grid=*/true, /*decimals=*/4),
        dbl_field("mdesc_per_s", "Mdesc/s", "lookup rate over the busy interval",
                  &M::mdesc_per_s, /*grid=*/true),
        dbl_field("sustained_gbps", "Gb/s", "min-frame line rate that lookup rate serves",
                  &M::sustained_gbps, /*grid=*/true, /*decimals=*/1),
        dbl_field("offered_gbps", "Gb/s", "offered bytes over the trace span (scaled time)",
                  &M::offered_gbps, /*grid=*/false, /*decimals=*/1),
        // Overload resilience (appended so pre-existing column order is
        // stable; all zero under the default policies).
        u64_field("admission_rejects", "flows",
                  "new flows deliberately turned away by the admission policy under "
                  "pressure (a subset of drops; see the drops/buffer_retries contrast)",
                  &M::admission_rejects),
        u64_field("evictions_lru", "flows", "idle victims evicted from Mem1/Mem2 by lut.eviction=lru",
                  &M::evictions_lru),
        u64_field("evictions_cam", "flows",
                  "oldest CAM entries evicted by lut.eviction=cam-oldest", &M::evictions_cam),
        u64_field("evictions_clock", "flows",
                  "second-chance sweep victims evicted by lut.eviction=clock",
                  &M::evictions_clock),
        u64_field("reservations_granted", "flows",
                  "provisional slots granted to new flows under pressure", &M::reservations_granted),
        u64_field("reservations_confirmed", "flows",
                  "reservations confirmed by a second packet before the deadline",
                  &M::reservations_confirmed),
        u64_field("reservations_reclaimed", "flows",
                  "reservations whose deadline passed; the slot was taken back",
                  &M::reservations_reclaimed),
        u64_field("drops_real", "pkts", "drops that hit background (non-overlay) traffic",
                  &M::drops_real),
        u64_field("drops_overlay", "pkts", "drops that hit attack-overlay traffic",
                  &M::drops_overlay),
        // Fault injection (zero when fault.* is off).
        u64_field("faults_injected", "faults",
                  "total injected faults fired across all sites", &M::faults_injected),
        u64_field("audit_violations", "violations",
                  "invariant-auditor failures under fault.audit=1 (0 = green)",
                  &M::audit_violations),
        u64_field("fault_campaign_windows", "windows",
                  "correlated fault-campaign windows entered (fault.campaign_*)",
                  &M::fault_campaign_windows),
        // Overload governor (zero — and slo_ok trivially 1 — when
        // governor.on is off).
        u64_field("governor_transitions", "transitions",
                  "governor level changes, up and down", &M::governor_transitions),
        u64_field("governor_max_level", "level",
                  "highest degradation level reached (0..3)", &M::governor_max_level),
        u64_field("governor_final_level", "level",
                  "degradation level at end of run (the recovery SLO wants 0)",
                  &M::governor_final_level),
        u64_field("governor_recovery_cycles", "cycles",
                  "worst pressure-clear -> L0 walk-down observed",
                  &M::governor_recovery_cycles),
        u64_field("governor_slo_ok", "bool",
                  "recovery-SLO verdict: ended at L0 within governor.recovery_budget",
                  &M::governor_slo_ok),
    };
    return schema;
}

std::string metric_text(const MetricField& field, const ScenarioMetrics& metrics) {
    switch (field.kind) {
        case MetricKind::kString: return metrics.*(field.s);
        case MetricKind::kU64: return std::to_string(metrics.*(field.u));
        case MetricKind::kDouble: return TablePrinter::fixed(metrics.*(field.d), field.decimals);
        case MetricKind::kBool: return (metrics.*(field.b)) ? "true" : "false";
    }
    return "?";
}

std::string metric_json(const MetricField& field, const ScenarioMetrics& metrics) {
    switch (field.kind) {
        case MetricKind::kString: return "\"" + json_escape(metrics.*(field.s)) + "\"";
        case MetricKind::kU64: return std::to_string(metrics.*(field.u));
        case MetricKind::kDouble: return shortest_double(metrics.*(field.d));
        case MetricKind::kBool: return (metrics.*(field.b)) ? "true" : "false";
    }
    return "null";
}

std::string shortest_double(double value) {
    char buffer[64];
    const auto [ptr, ec] = std::to_chars(buffer, buffer + sizeof(buffer), value);
    return ec == std::errc() ? std::string(buffer, ptr) : std::to_string(value);
}

std::string json_escape(const std::string& raw) {
    std::string out;
    out.reserve(raw.size());
    for (const char c : raw) {
        if (c == '"' || c == '\\') {
            out += '\\';
            out += c;
        } else if (static_cast<unsigned char>(c) < 0x20) {
            char buffer[8];
            std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
            out += buffer;
        } else {
            out += c;
        }
    }
    return out;
}

std::string metrics_json_object(const ScenarioMetrics& metrics,
                                const std::vector<std::pair<std::string, std::string>>& lead) {
    std::string out = "{";
    bool first = true;
    const auto append = [&](const std::string& key, const std::string& json_value) {
        if (!first) out += ",";
        first = false;
        out += "\"" + json_escape(key) + "\":" + json_value;
    };
    for (const auto& [key, value] : lead) {
        append(key, "\"" + json_escape(value) + "\"");
    }
    for (const MetricField& field : metric_schema()) {
        append(field.name, metric_json(field, metrics));
    }
    out += "}";
    return out;
}

namespace {

/// Quote a CSV cell only when it needs it (commas/quotes/newlines).
std::string csv_cell(const std::string& raw) {
    if (raw.find_first_of(",\"\n") == std::string::npos) return raw;
    std::string out = "\"";
    for (const char c : raw) {
        if (c == '"') out += '"';
        out += c;
    }
    out += "\"";
    return out;
}

}  // namespace

std::string metrics_csv_header(const std::vector<std::string>& lead) {
    std::string out;
    bool first = true;  // explicit: an empty first cell must still separate.
    for (const std::string& column : lead) {
        if (!first) out += ",";
        first = false;
        out += csv_cell(column);
    }
    for (const MetricField& field : metric_schema()) {
        if (!first) out += ",";
        first = false;
        out += field.name;
    }
    return out;
}

std::string metrics_csv_row(const ScenarioMetrics& metrics,
                            const std::vector<std::string>& lead) {
    std::string out;
    bool first = true;
    for (const std::string& cell : lead) {
        if (!first) out += ",";
        first = false;
        out += csv_cell(cell);
    }
    for (const MetricField& field : metric_schema()) {
        if (!first) out += ",";
        first = false;
        // CSV reuses the JSON scalar rendering (full precision, locale-free);
        // strings get CSV quoting instead of JSON quoting.
        out += field.kind == MetricKind::kString ? csv_cell(metrics.*(field.s))
                                                 : metric_json(field, metrics);
    }
    return out;
}

std::string ScenarioMetrics::to_string() const {
    // Human summary, emitted straight from the schema registry: a header
    // line, then name=value tokens wrapped to a terminal-friendly width.
    std::string out = "scenario " + scenario;
    if (!drained) out += "  [NOT DRAINED]";
    std::string line;
    for (const MetricField& field : metric_schema()) {
        if (field.s == &ScenarioMetrics::scenario || field.b == &ScenarioMetrics::drained) {
            continue;  // both already on the header line.
        }
        std::string token = std::string(field.name) + "=" + metric_text(field, *this);
        if (field.unit[0] != '\0') token += std::string(" ") + field.unit;
        if (line.size() + token.size() + 2 > 78 && !line.empty()) {
            out += "\n  " + line;
            line.clear();
        }
        if (!line.empty()) line += "  ";
        line += token;
    }
    if (!line.empty()) out += "\n  " + line;
    return out;
}

}  // namespace flowcam::workload
