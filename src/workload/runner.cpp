#include "workload/runner.hpp"

#include <unordered_set>

#include "net/linerate.hpp"
#include "sim/engine.hpp"
#include "sim/stats.hpp"
#include "sim/ticker.hpp"
#include "workload/experiment.hpp"

namespace flowcam::workload {

namespace {

/// Pulls packets from the Scenario and offers them into the analyzer's
/// packet buffer at the configured input rate, holding a packet across
/// cycles under backpressure (the line side cannot drop a frame it has
/// already accepted).
class SourceTicker final : public sim::Ticker {
  public:
    SourceTicker(Scenario& scenario, analyzer::TrafficAnalyzer& analyzer, u64 packet_budget,
                 u32 cycles_per_packet, double time_scale, ScenarioMetrics& metrics)
        : scenario_(scenario),
          analyzer_(analyzer),
          budget_(packet_budget),
          cycles_per_packet_(cycles_per_packet == 0 ? 1 : cycles_per_packet),
          time_scale_(time_scale > 0.0 ? time_scale : 1.0),
          metrics_(metrics) {}

    void tick(Cycle now) override {
        last_now_ = now;
        if (done()) return;
        if (!pending_ && now % cycles_per_packet_ != 0) return;
        if (!pending_) {
            record_ = scenario_.next();
            // Scenario-time compression: scale the offered timestamp so the
            // flow idle timeout is reachable inside short runs. Everything
            // downstream (flow state expiry, trace span, offered Gb/s) sees
            // only scaled time, so the expiry fast-forward guard stays
            // consistent by construction. The nudge keeps the stream
            // strictly monotonic for scales < 1. Products beyond the u64
            // range (epoch-ns traces under huge scales) saturate instead of
            // wrapping: past the cap the stream degrades to +1 ns steps.
            if (time_scale_ != 1.0) {
                constexpr double kMaxScaledNs = 9.2e18;  // < 2^63: cast-safe.
                const double scaled =
                    static_cast<double>(record_.timestamp_ns) * time_scale_;
                record_.timestamp_ns =
                    scaled >= kMaxScaledNs ? static_cast<u64>(kMaxScaledNs)
                                           : static_cast<u64>(scaled);
            }
            if (record_.timestamp_ns <= last_scaled_ns_ && metrics_.packets > 0) {
                record_.timestamp_ns = last_scaled_ns_ + 1;
            }
            last_scaled_ns_ = record_.timestamp_ns;
            pending_ = true;
        }
        if (!analyzer_.feed_record(record_)) return;  // buffer full; retry.
        pending_ = false;
        ++metrics_.packets;
        metrics_.bytes += record_.frame_bytes;
        flows_.insert(record_.flow_index);
        if (record_.flow_index >= kOverlayFlowBase) ++metrics_.overlay_packets;
        if (first_ns_ == 0) first_ns_ = record_.timestamp_ns;
        last_ns_ = record_.timestamp_ns;
    }

    [[nodiscard]] std::string name() const override { return "scenario-source"; }

    [[nodiscard]] u64 idle_cycles_hint() const override {
        if (done()) return ~u64{0};  // exhausted: idle forever.
        if (pending_) return 0;      // retrying a backpressured packet.
        // No-op until the next offer slot of the input-rate divider.
        const Cycle next = last_now_ + 1;
        return (cycles_per_packet_ - (next % cycles_per_packet_)) % cycles_per_packet_;
    }

    [[nodiscard]] bool done() const { return metrics_.packets >= budget_; }

    void finalize() {
        metrics_.distinct_flows = flows_.size();
        metrics_.trace_span_ns = last_ns_ - first_ns_;
    }

  private:
    Scenario& scenario_;
    analyzer::TrafficAnalyzer& analyzer_;
    u64 budget_;
    u32 cycles_per_packet_;
    double time_scale_;
    ScenarioMetrics& metrics_;
    net::PacketRecord record_;
    u64 last_scaled_ns_ = 0;
    bool pending_ = false;
    Cycle last_now_ = 0;
    std::unordered_set<u64> flows_;
    u64 first_ns_ = 0;
    u64 last_ns_ = 0;
};

/// Adapts the analyzer (packet buffer -> Flow LUT -> event engine) to the
/// engine's Ticker contract; one tick advances the whole stack one system
/// cycle.
class AnalyzerTicker final : public sim::Ticker {
  public:
    explicit AnalyzerTicker(analyzer::TrafficAnalyzer& analyzer) : analyzer_(analyzer) {}
    void tick(Cycle /*now*/) override { analyzer_.step(); }
    [[nodiscard]] std::string name() const override { return "traffic-analyzer"; }
    [[nodiscard]] u64 idle_cycles_hint() const override { return analyzer_.idle_cycles_hint(); }
    void skip(u64 cycles) override { analyzer_.skip_idle(cycles); }

  private:
    analyzer::TrafficAnalyzer& analyzer_;
};

}  // namespace

ScenarioRunner::ScenarioRunner(RunnerConfig config) : config_(std::move(config)) {}

Result<ScenarioMetrics> ScenarioRunner::run(const std::string& name,
                                            const ScenarioConfig& scenario_config) {
    return run(builtin_registry(), name, scenario_config);
}

Result<ScenarioMetrics> ScenarioRunner::run(const Registry& registry, const std::string& name,
                                            const ScenarioConfig& scenario_config) {
    // `name` is a full spec (plain name, replay:<path>, or a '+'-composition).
    // A plain run IS a one-cell experiment: no axes, this runner's config as
    // the base tree — so every call site shares the Experiment code path
    // (horizon resolution, patching, seeding) with the grid sweeps.
    ExperimentSpec spec;
    spec.base.runner = config_;
    spec.base.scenario = scenario_config;
    spec.scenarios = {name};
    auto experiment = Experiment::plan(std::move(spec));
    if (!experiment) return experiment.status();
    std::vector<CellResult> results = experiment.value().run(1, registry);
    if (!results[0].status.is_ok()) return results[0].status;
    return std::move(results[0].metrics);
}

ScenarioMetrics ScenarioRunner::run(Scenario& scenario) {
    analyzer::TrafficAnalyzer analyzer(config_.analyzer);

    ScenarioMetrics metrics;
    metrics.scenario = scenario.name();

    SourceTicker source(scenario, analyzer, config_.packets, config_.cycles_per_packet,
                        config_.time_scale, metrics);
    AnalyzerTicker sink(analyzer);

    sim::Engine engine;
    engine.add(source);  // pipeline order: source before the consuming stack.
    engine.add(sink);

    metrics.drained = engine.run_until(
        [&] {
            // The source retries under backpressure, so every offered packet
            // eventually reaches the LUT: done means all packets pumped out
            // of the packet buffer and the LUT pipeline empty.
            return source.done() && analyzer.stats().packets >= metrics.packets &&
                   analyzer.lut().drained();
        },
        config_.max_cycles);
    source.finalize();

    const core::FlowLutStats& lut = analyzer.lut().stats();
    metrics.completions = lut.completions;
    metrics.cam_hits = lut.cam_hits;
    metrics.lu1_hits = lut.lu1_hits;
    metrics.lu2_hits = lut.lu2_hits;
    metrics.new_flows = lut.new_flows;
    metrics.drops = lut.drops;
    // TrafficAnalyzer counts one "drop" per rejected feed_record call; with
    // a retrying source these are backpressure stalls, not lost packets.
    metrics.buffer_retries = analyzer.stats().dropped_buffer_full;
    metrics.flows_expired = analyzer.lut().flow_state().expired_total();
    for (const auto& event : analyzer.events()) {
        switch (event.kind) {
            case analyzer::EventKind::kPortScan: ++metrics.events_port_scan; break;
            case analyzer::EventKind::kHeavyHitter: ++metrics.events_heavy_hitter; break;
            case analyzer::EventKind::kTablePressure: ++metrics.events_table_pressure; break;
            case analyzer::EventKind::kFlowExpired: ++metrics.events_flow_expired; break;
            default: break;
        }
    }
    metrics.cycles = engine.now();
    metrics.new_flow_ratio =
        metrics.completions == 0
            ? 0.0
            : static_cast<double>(metrics.new_flows) / static_cast<double>(metrics.completions);
    metrics.mdesc_per_s = sim::mega_per_second(metrics.completions, metrics.cycles,
                                               config_.analyzer.lut.system_clock_hz);
    metrics.sustained_gbps = net::supported_gbps(metrics.mdesc_per_s);
    metrics.offered_gbps = metrics.trace_span_ns == 0
                               ? 0.0
                               : static_cast<double>(metrics.bytes) * 8.0 /
                                     static_cast<double>(metrics.trace_span_ns);
    return metrics;
}

// ScenarioMetrics::to_string lives in workload/metrics.cpp, rendered from
// the metric schema registry.

}  // namespace flowcam::workload
