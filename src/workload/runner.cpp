#include "workload/runner.hpp"

#include <array>
#include <fstream>
#include <memory>
#include <optional>
#include <span>
#include <unordered_set>

#include "net/linerate.hpp"
#include "sim/engine.hpp"
#include "sim/stats.hpp"
#include "sim/ticker.hpp"
#include "workload/experiment.hpp"
#include "workload/tickers.hpp"

namespace flowcam::workload {

namespace {

/// Pulls packets from the Scenario and offers them into the analyzer's
/// packet buffer at the configured input rate, holding a packet across
/// cycles under backpressure (the line side cannot drop a frame it has
/// already accepted).
class SourceTicker final : public sim::Ticker {
  public:
    /// Upper bound on the batched source's hash lookahead. Small enough that
    /// the drawn-ahead records are a trivial fixed footprint, large enough to
    /// keep the 4-wide multi-key hash kernel fed.
    static constexpr std::size_t kMaxSourceBatch = 16;

    SourceTicker(Scenario& scenario, analyzer::TrafficAnalyzer& analyzer, u64 packet_budget,
                 u32 cycles_per_packet, double time_scale, ScenarioMetrics& metrics,
                 obs::Recorder* obs = nullptr)
        : scenario_(scenario),
          analyzer_(analyzer),
          budget_(packet_budget),
          cycles_per_packet_(cycles_per_packet == 0 ? 1 : cycles_per_packet),
          time_scale_(time_scale > 0.0 ? time_scale : 1.0),
          batch_(std::min<std::size_t>(analyzer.lut().config().batch, kMaxSourceBatch)),
          metrics_(metrics),
          obs_(obs) {
        if (obs_ != nullptr) {
            auto cell = obs_->register_counter("source.backpressure_retries");
            obs_retries_ = cell ? cell.value() : &obs_scrap_cell_;
        }
    }

    void tick(Cycle now) override {
        last_now_ = now;
        if (done()) return;
        if (!pending_ && now % cycles_per_packet_ != 0) return;
        if (!pending_) {
            if (batch_ > 0) {
                if (batch_pos_ == batch_count_) prepare_batch();
            } else {
                record_ = scenario_.next();
                scale_timestamp(record_, metrics_.packets > 0);
            }
            pending_ = true;
        }
        const net::PacketRecord& record =
            batch_ > 0 ? batch_records_[batch_pos_] : record_;
        const bool fed =
            batch_ > 0 ? analyzer_.feed_prepared(record, batch_keys_[batch_pos_],
                                                 batch_index_a_[batch_pos_],
                                                 batch_index_b_[batch_pos_],
                                                 batch_digests_[batch_pos_])
                       : analyzer_.feed_record(record_);
        if (!fed) {  // buffer full; retry next cycle.
            if (obs_ != nullptr) {
                if (burst_retries_ == 0) burst_start_ = now;
                ++burst_retries_;
                ++*obs_retries_;
            }
            return;
        }
        if (obs_ != nullptr && burst_retries_ > 0) {
            obs_->event_span(obs::Recorder::kTrackSource, "backpressure",
                             obs_->sys_ns(burst_start_), obs_->sys_ns(now - burst_start_),
                             "retries", burst_retries_);
            burst_retries_ = 0;
        }
        pending_ = false;
        ++metrics_.packets;
        metrics_.bytes += record.frame_bytes;
        flows_.insert(record.flow_index);
        if (record.flow_index >= kOverlayFlowBase) {
            ++metrics_.overlay_packets;
            if (!overlay_seen_) {
                overlay_seen_ = true;
                overlay_first_ = now;
            }
            overlay_last_ = now;
        }
        if (first_ns_ == 0) first_ns_ = record.timestamp_ns;
        last_ns_ = record.timestamp_ns;
        if (batch_ > 0) ++batch_pos_;
    }

    [[nodiscard]] std::string name() const override { return "scenario-source"; }

    [[nodiscard]] u64 idle_cycles_hint() const override {
        if (done()) return ~u64{0};  // exhausted: idle forever.
        if (pending_) return 0;      // retrying a backpressured packet.
        // No-op until the next offer slot of the input-rate divider.
        const Cycle next = last_now_ + 1;
        return (cycles_per_packet_ - (next % cycles_per_packet_)) % cycles_per_packet_;
    }

    [[nodiscard]] bool done() const { return metrics_.packets >= budget_; }

    void finalize() {
        metrics_.distinct_flows = flows_.size();
        metrics_.trace_span_ns = last_ns_ - first_ns_;
        if (obs_ == nullptr) return;
        if (burst_retries_ > 0) {  // run ended mid-burst; close the span.
            obs_->event_span(obs::Recorder::kTrackSource, "backpressure",
                             obs_->sys_ns(burst_start_), obs_->sys_ns(last_now_ - burst_start_),
                             "retries", burst_retries_);
            burst_retries_ = 0;
        }
        if (overlay_seen_) {
            // The composed-scenario overlay window (onset..offset) as one span.
            obs_->event_span(obs::Recorder::kTrackScenario, "overlay-window",
                             obs_->sys_ns(overlay_first_),
                             obs_->sys_ns(overlay_last_ - overlay_first_ + 1), "packets",
                             metrics_.overlay_packets);
        }
    }

  private:
    /// Scenario-time compression: scale the offered timestamp so the flow
    /// idle timeout is reachable inside short runs. Everything downstream
    /// (flow state expiry, trace span, offered Gb/s) sees only scaled time,
    /// so the expiry fast-forward guard stays consistent by construction.
    /// The nudge keeps the stream strictly monotonic for scales < 1
    /// (`not_first` is false only for the very first drawn record). Products
    /// beyond the u64 range (epoch-ns traces under huge scales) saturate
    /// instead of wrapping: past the cap the stream degrades to +1 ns steps.
    void scale_timestamp(net::PacketRecord& record, bool not_first) {
        if (time_scale_ != 1.0) {
            constexpr double kMaxScaledNs = 9.2e18;  // < 2^63: cast-safe.
            const double scaled = static_cast<double>(record.timestamp_ns) * time_scale_;
            record.timestamp_ns = scaled >= kMaxScaledNs ? static_cast<u64>(kMaxScaledNs)
                                                         : static_cast<u64>(scaled);
        }
        if (record.timestamp_ns <= last_scaled_ns_ && not_first) {
            record.timestamp_ns = last_scaled_ns_ + 1;
        }
        last_scaled_ns_ = record.timestamp_ns;
    }

    /// Draw up to `batch_` records ahead and hash all their keys through the
    /// multi-key kernel in one go. Sound because scenario generators are
    /// pure record streams: drawing record k early yields exactly the record
    /// scalar dispatch would draw at its offer slot, and the timestamp
    /// scale/nudge is applied in draw order with the same not-first
    /// condition (at scalar draw k, metrics_.packets == k == drawn_).
    void prepare_batch() {
        const u64 remaining = budget_ - drawn_;
        const std::size_t n =
            static_cast<std::size_t>(std::min<u64>(batch_, remaining));
        std::array<std::span<const u8>, kMaxSourceBatch> views;
        for (std::size_t i = 0; i < n; ++i) {
            net::PacketRecord& record = batch_records_[i];
            record = scenario_.next();
            scale_timestamp(record, drawn_ > 0);
            ++drawn_;
            batch_keys_[i] = record.key_override.empty()
                                 ? core::FlowKey(net::NTuple::from_five_tuple(record.tuple))
                                 : core::FlowKey(record.key_override);
            views[i] = batch_keys_[i].view();
        }
        const hash::IndexGenerator& indexer = analyzer_.lut().table().indexer();
        indexer.digest_multi(0, views.data(), n, batch_digests_.data());
        indexer.digest_multi(1, views.data(), n, batch_digests_b_.data());
        for (std::size_t i = 0; i < n; ++i) {
            batch_index_a_[i] = indexer.index_of_digest(batch_digests_[i]);
            batch_index_b_[i] = indexer.index_of_digest(batch_digests_b_[i]);
        }
        batch_pos_ = 0;
        batch_count_ = n;
        ++metrics_.hash_batches;
    }

    Scenario& scenario_;
    analyzer::TrafficAnalyzer& analyzer_;
    u64 budget_;
    u32 cycles_per_packet_;
    double time_scale_;
    std::size_t batch_;  ///< 0 = scalar dispatch; else lookahead depth.
    ScenarioMetrics& metrics_;
    net::PacketRecord record_;
    u64 last_scaled_ns_ = 0;
    bool pending_ = false;
    // Batched-dispatch lookahead state (fixed storage; untouched when
    // batch_ == 0).
    std::array<net::PacketRecord, kMaxSourceBatch> batch_records_;
    std::array<core::FlowKey, kMaxSourceBatch> batch_keys_;
    std::array<u64, kMaxSourceBatch> batch_digests_;    ///< path-0 digests.
    std::array<u64, kMaxSourceBatch> batch_digests_b_;  ///< path-1 digests.
    std::array<u64, kMaxSourceBatch> batch_index_a_;
    std::array<u64, kMaxSourceBatch> batch_index_b_;
    std::size_t batch_pos_ = 0;
    std::size_t batch_count_ = 0;
    u64 drawn_ = 0;  ///< records drawn ahead (== metrics_.packets at scalar draw).
    Cycle last_now_ = 0;
    std::unordered_set<u64> flows_;
    u64 first_ns_ = 0;
    u64 last_ns_ = 0;
    obs::Recorder* obs_;
    u64* obs_retries_ = nullptr;
    u64 obs_scrap_cell_ = 0;
    Cycle burst_start_ = 0;
    u64 burst_retries_ = 0;
    bool overlay_seen_ = false;
    Cycle overlay_first_ = 0;
    Cycle overlay_last_ = 0;
};

// AnalyzerTicker, SamplerTicker, AuditorTicker, write_file and the counter
// harvest moved to workload/tickers.hpp — the sharded engine builds the same
// per-stack pipeline around its slice sources.
using detail::AnalyzerTicker;
using detail::AuditorTicker;
using detail::SamplerTicker;
using detail::write_file;

}  // namespace

ScenarioRunner::ScenarioRunner(RunnerConfig config) : config_(std::move(config)) {}

Result<ScenarioMetrics> ScenarioRunner::run(const std::string& name,
                                            const ScenarioConfig& scenario_config) {
    return run(builtin_registry(), name, scenario_config);
}

Result<ScenarioMetrics> ScenarioRunner::run(const Registry& registry, const std::string& name,
                                            const ScenarioConfig& scenario_config) {
    // `name` is a full spec (plain name, replay:<path>, or a '+'-composition).
    // A plain run IS a one-cell experiment: no axes, this runner's config as
    // the base tree — so every call site shares the Experiment code path
    // (horizon resolution, patching, seeding) with the grid sweeps.
    ExperimentSpec spec;
    spec.base.runner = config_;
    spec.base.scenario = scenario_config;
    spec.scenarios = {name};
    auto experiment = Experiment::plan(std::move(spec));
    if (!experiment) return experiment.status();
    std::vector<CellResult> results = experiment.value().run(1, registry);
    if (!results[0].status.is_ok()) return results[0].status;
    return std::move(results[0].metrics);
}

ScenarioMetrics ScenarioRunner::run(Scenario& scenario) {
    analyzer::TrafficAnalyzer analyzer(config_.analyzer);

    // Flight recorder: only constructed when tracing or sampling is on, so
    // the disabled path allocates nothing and every event site stays one
    // predictable null-check branch.
    std::unique_ptr<obs::Recorder> recorder;
    if (config_.obs.enabled()) {
        recorder = std::make_unique<obs::Recorder>(config_.obs);
        recorder->set_clock(config_.analyzer.lut.system_clock_hz,
                            config_.analyzer.lut.memory_clock_ratio);
        analyzer.set_recorder(recorder.get());
    }

    // Fault injector: like the recorder, only constructed when asked for,
    // so the default path carries a single null-check per site.
    std::unique_ptr<faults::FaultInjector> injector;
    if (config_.fault.enabled()) {
        injector = std::make_unique<faults::FaultInjector>(config_.fault);
        analyzer.set_faults(injector.get());
    }

    ScenarioMetrics metrics;
    metrics.scenario = scenario.name();

    SourceTicker source(scenario, analyzer, config_.packets, config_.cycles_per_packet,
                        config_.time_scale, metrics, recorder.get());
    AnalyzerTicker sink(analyzer);

    sim::Engine engine;
    engine.set_recorder(recorder.get());
    engine.add(source);  // pipeline order: source before the consuming stack.
    engine.add(sink);
    std::optional<SamplerTicker> sampler;
    if (recorder != nullptr && config_.obs.sample_interval > 0) {
        sampler.emplace(*recorder, config_.obs.sample_interval);
        engine.add(*sampler);
    }
    std::optional<AuditorTicker> auditor;
    if (injector != nullptr && config_.fault.audit) {
        auditor.emplace(analyzer.lut());
        engine.add(*auditor);
    }
    // Overload governor: closed-loop staged degradation. Constructed only
    // when asked for — governor-off runs build neither the controller nor
    // its ticker and stay byte-identical to a build without src/governor.
    std::unique_ptr<governor::OverloadGovernor> gov;
    std::optional<governor::GovernorTicker> gov_ticker;
    if (config_.governor.on) {
        gov = std::make_unique<governor::OverloadGovernor>(config_.governor, analyzer,
                                                           recorder.get());
        gov_ticker.emplace(*gov, config_.governor.interval);
        engine.add(*gov_ticker);
    }

    metrics.drained = engine.run_until(
        [&] {
            // The source retries under backpressure, so every offered packet
            // eventually reaches the LUT: done means all packets pumped out
            // of the packet buffer and the LUT pipeline empty.
            return source.done() && analyzer.stats().packets >= metrics.packets &&
                   analyzer.lut().drained();
        },
        config_.max_cycles);
    source.finalize();

    detail::harvest_counters(metrics, analyzer);
    if (gov != nullptr) {
        gov->finish(engine.now());
        const governor::GovernorStats& gstats = gov->stats();
        metrics.governor_transitions = gstats.transitions;
        metrics.governor_max_level = gstats.max_level;
        metrics.governor_final_level = gov->level();
        metrics.governor_recovery_cycles = gstats.recovery_cycles;
        metrics.governor_slo_ok = gov->slo_ok() ? 1 : 0;
    }
    if (injector != nullptr) {
        metrics.faults_injected = injector->stats().total();
        metrics.fault_campaign_windows = injector->stats().campaign_windows;
        if (config_.fault.audit) {
            // Mid-run conservation sweeps plus the full post-drain pass
            // (queue emptiness, parked-bucket leaks, ghost records). A run
            // that cannot drain inside its cycle budget is itself a failed
            // invariant in audit mode — a parked-forever bucket presents
            // exactly as a wedged drain, and the full pass only makes sense
            // on a quiescent pipeline.
            metrics.audit_violations =
                (auditor ? auditor->violations() : 0) +
                analyzer.lut().audit(/*final_pass=*/metrics.drained) +
                (metrics.drained ? 0 : 1);
        }
    }
    metrics.cycles = engine.now();
    metrics.new_flow_ratio =
        metrics.completions == 0
            ? 0.0
            : static_cast<double>(metrics.new_flows) / static_cast<double>(metrics.completions);
    metrics.mdesc_per_s = sim::mega_per_second(metrics.completions, metrics.cycles,
                                               config_.analyzer.lut.system_clock_hz);
    metrics.sustained_gbps = net::supported_gbps(metrics.mdesc_per_s);
    metrics.offered_gbps = metrics.trace_span_ns == 0
                               ? 0.0
                               : static_cast<double>(metrics.bytes) * 8.0 /
                                     static_cast<double>(metrics.trace_span_ns);

    if (recorder != nullptr) {
        if (const obs::Histogram* latency = analyzer.lut().latency_histogram();
            latency != nullptr && latency->count() > 0) {
            metrics.lat_p50_ns = latency->percentile(0.50);
            metrics.lat_p95_ns = latency->percentile(0.95);
            metrics.lat_p99_ns = latency->percentile(0.99);
            metrics.lat_max_ns = latency->max();
        }
        if (config_.obs.sample_interval > 0) {
            recorder->sample(engine.now());  // final state, deterministic tail.
            write_file(config_.obs.sample_path, recorder->samples_jsonl());
        }
        if (config_.obs.trace) {
            write_file(config_.obs.trace_path, recorder->trace_json());
        }
    }
    return metrics;
}

// ScenarioMetrics::to_string lives in workload/metrics.cpp, rendered from
// the metric schema registry.

}  // namespace flowcam::workload
