// Lightweight statistics primitives: counters, min/max/mean accumulators,
// fixed-bucket histograms and windowed rate meters. These drive every number
// the benchmark harness prints, so they are deliberately simple and exact.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace flowcam::sim {

/// Monotonic event counter.
class Counter {
  public:
    void inc(u64 by = 1) { value_ += by; }
    [[nodiscard]] u64 value() const { return value_; }
    void reset() { value_ = 0; }

  private:
    u64 value_ = 0;
};

/// Accumulates samples and reports count/sum/mean/min/max.
class Accumulator {
  public:
    void add(double sample) {
        ++count_;
        sum_ += sample;
        min_ = std::min(min_, sample);
        max_ = std::max(max_, sample);
    }

    [[nodiscard]] u64 count() const { return count_; }
    [[nodiscard]] double sum() const { return sum_; }
    [[nodiscard]] double mean() const { return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_); }
    [[nodiscard]] double min() const { return count_ == 0 ? 0.0 : min_; }
    [[nodiscard]] double max() const { return count_ == 0 ? 0.0 : max_; }

    void reset() { *this = Accumulator{}; }

  private:
    u64 count_ = 0;
    double sum_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/// Linear histogram over [0, bucket_width * bucket_count); overflow bucket
/// collects the tail. Used for latency distributions.
class Histogram {
  public:
    Histogram(double bucket_width, std::size_t bucket_count)
        : bucket_width_(bucket_width), buckets_(bucket_count + 1, 0) {}

    void add(double sample) {
        acc_.add(sample);
        auto idx = static_cast<std::size_t>(std::max(sample, 0.0) / bucket_width_);
        idx = std::min(idx, buckets_.size() - 1);
        ++buckets_[idx];
    }

    [[nodiscard]] const Accumulator& summary() const { return acc_; }
    [[nodiscard]] u64 bucket(std::size_t i) const { return buckets_.at(i); }
    [[nodiscard]] std::size_t bucket_count() const { return buckets_.size(); }

    /// Value below which `fraction` of the samples fall (bucket-granular).
    [[nodiscard]] double percentile(double fraction) const {
        const u64 total = acc_.count();
        if (total == 0) return 0.0;
        const auto target = static_cast<u64>(std::ceil(fraction * static_cast<double>(total)));
        u64 seen = 0;
        for (std::size_t i = 0; i < buckets_.size(); ++i) {
            seen += buckets_[i];
            if (seen >= target) return bucket_width_ * static_cast<double>(i + 1);
        }
        return bucket_width_ * static_cast<double>(buckets_.size());
    }

  private:
    double bucket_width_;
    std::vector<u64> buckets_;
    Accumulator acc_;
};

/// Busy/idle tracker for a shared resource (e.g. the DQ bus): ratio of busy
/// cycles to elapsed cycles over a measurement window.
class UtilizationMeter {
  public:
    void mark_busy(Cycle now, u64 busy_cycles = 1) {
        last_cycle_ = std::max(last_cycle_, now + busy_cycles);
        busy_ += busy_cycles;
    }

    void observe(Cycle now) { last_cycle_ = std::max(last_cycle_, now); }

    void start_window(Cycle now) {
        window_start_ = now;
        busy_ = 0;
        last_cycle_ = now;
    }

    [[nodiscard]] u64 busy_cycles() const { return busy_; }
    [[nodiscard]] u64 elapsed_cycles() const {
        return last_cycle_ > window_start_ ? last_cycle_ - window_start_ : 0;
    }
    [[nodiscard]] double utilization() const {
        const u64 elapsed = elapsed_cycles();
        return elapsed == 0 ? 0.0 : static_cast<double>(busy_) / static_cast<double>(elapsed);
    }

  private:
    Cycle window_start_ = 0;
    Cycle last_cycle_ = 0;
    u64 busy_ = 0;
};

/// Converts an event count over simulated cycles at a clock frequency into a
/// mega-events-per-second rate — the unit of the paper's Table II.
[[nodiscard]] inline double mega_per_second(u64 events, Cycle cycles, double clock_hz) {
    if (cycles == 0) return 0.0;
    const double seconds = static_cast<double>(cycles) / clock_hz;
    return static_cast<double>(events) / seconds / 1e6;
}

}  // namespace flowcam::sim
