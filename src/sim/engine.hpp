// The simulation engine: a fixed-order cycle loop over registered Tickers.
//
// Clock domains: the engine's base cycle is the *system* clock (200 MHz in
// the paper's prototype). A component registered with ticks_per_cycle = m
// belongs to a clock domain running m times faster — e.g. the DDR3 command
// clock behind a quarter-rate controller (m = 4, 800 MHz). Within one system
// cycle the faster domain's ticks are interleaved before the commit phase, so
// cross-domain FIFOs still obey the one-cycle visibility rule of the slower
// (consumer-facing) domain.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "sim/ticker.hpp"

namespace flowcam::sim {

class Engine {
  public:
    /// Register a block. Order of registration is tick order within a cycle;
    /// callers should register in pipeline order (sources first).
    void add(Ticker& ticker, u32 ticks_per_cycle = 1) {
        blocks_.push_back(Entry{&ticker, ticks_per_cycle});
    }

    /// Register a commit hook (normally Fifo<T>::commit) run after all ticks.
    void add_commit(std::function<void()> hook) { commits_.push_back(std::move(hook)); }

    /// Execute one system-clock cycle.
    void step() {
        for (auto& entry : blocks_) {
            for (u32 sub = 0; sub < entry.ticks_per_cycle; ++sub) {
                entry.ticker->tick(now_ * entry.ticks_per_cycle + sub);
            }
        }
        for (auto& hook : commits_) hook();
        ++now_;
    }

    /// Run `cycles` system-clock cycles.
    void run(u64 cycles) {
        for (u64 i = 0; i < cycles; ++i) step();
    }

    /// Run until `done()` returns true or the cycle budget is exhausted.
    /// Returns true if the predicate fired.
    bool run_until(const std::function<bool()>& done, u64 max_cycles) {
        for (u64 i = 0; i < max_cycles; ++i) {
            if (done()) return true;
            step();
        }
        return done();
    }

    [[nodiscard]] Cycle now() const { return now_; }

  private:
    struct Entry {
        Ticker* ticker;
        u32 ticks_per_cycle;
    };
    std::vector<Entry> blocks_;
    std::vector<std::function<void()>> commits_;
    Cycle now_ = 0;
};

}  // namespace flowcam::sim
