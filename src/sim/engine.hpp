// The simulation engine: a fixed-order cycle loop over registered Tickers.
//
// Clock domains: the engine's base cycle is the *system* clock (200 MHz in
// the paper's prototype). A component registered with ticks_per_cycle = m
// belongs to a clock domain running m times faster — e.g. the DDR3 command
// clock behind a quarter-rate controller (m = 4, 800 MHz). Within one system
// cycle the faster domain's ticks are interleaved before the commit phase, so
// cross-domain FIFOs still obey the one-cycle visibility rule of the slower
// (consumer-facing) domain.
#pragma once

#include <algorithm>
#include <functional>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "obs/obs.hpp"
#include "sim/ticker.hpp"

namespace flowcam::sim {

class Engine {
  public:
    /// Register a block. Order of registration is tick order within a cycle;
    /// callers should register in pipeline order (sources first).
    void add(Ticker& ticker, u32 ticks_per_cycle = 1) {
        blocks_.push_back(Entry{&ticker, ticks_per_cycle});
    }

    /// Register a commit hook (normally Fifo<T>::commit) run after all
    /// ticks. Hooks are stored as a plain (object, function) pair — one
    /// indirect call per cycle, no std::function dispatch on the hot loop.
    /// A hook registered this way has no idleness contract, so it pins the
    /// fast-forward (every cycle must run it); prefer the two-method
    /// overload when the hook can prove itself a no-op.
    template <auto Method, typename T>
    void add_commit(T& object) {
        commits_.push_back(CommitHook{
            &object, [](void* o) { (static_cast<T*>(o)->*Method)(); }, nullptr});
    }
    /// Register a commit hook with an idleness companion, e.g.
    /// add_commit<&Fifo<int>::commit, &Fifo<int>::commit_idle>(fifo).
    /// While IdleMethod returns true the hook is provably a no-op, so
    /// pipelines built on commit hooks still fast-forward through idle
    /// stretches instead of pinning the engine to 1-cycle steps.
    template <auto Method, auto IdleMethod, typename T>
    void add_commit(T& object) {
        commits_.push_back(
            CommitHook{&object, [](void* o) { (static_cast<T*>(o)->*Method)(); },
                       [](void* o) -> bool { return (static_cast<T*>(o)->*IdleMethod)(); }});
    }
    /// C-style registration for contexts that are not member functions.
    void add_commit(void* context, void (*hook)(void*)) {
        commits_.push_back(CommitHook{context, hook, nullptr});
    }

    /// Execute one system-clock cycle.
    void step() {
        for (auto& entry : blocks_) {
            for (u32 sub = 0; sub < entry.ticks_per_cycle; ++sub) {
                entry.ticker->tick(now_ * entry.ticks_per_cycle + sub);
            }
        }
        for (auto& hook : commits_) hook.fn(hook.object);
        ++now_;
    }

    /// Run `cycles` system-clock cycles (idle stretches fast-forwarded).
    void run(u64 cycles) {
        for (u64 i = 0; i < cycles;) {
            step();
            ++i;
            i += fast_forward(cycles - i);
        }
    }

    /// Run until `done()` returns true or the cycle budget is exhausted.
    /// Returns true if the predicate fired. When every block reports idle
    /// cycles ahead (idle_cycles_hint), they are skipped in one jump — by
    /// contract the skipped ticks are no-ops, so `done()` cannot change
    /// during the jump and the outcome is cycle-identical.
    bool run_until(const std::function<bool()>& done, u64 max_cycles) {
        for (u64 i = 0; i < max_cycles;) {
            if (done()) return true;
            step();
            ++i;
            i += fast_forward(max_cycles - i);
        }
        return done();
    }

    [[nodiscard]] Cycle now() const { return now_; }

    /// Attach a flight recorder (nullptr detaches). The engine emits one
    /// trace span per fast-forward jump; cycle accounting is unchanged.
    void set_recorder(obs::Recorder* recorder) { obs_ = recorder; }

  private:
    struct Entry {
        Ticker* ticker;
        u32 ticks_per_cycle;
    };
    struct CommitHook {
        void* object;
        void (*fn)(void*);
        bool (*idle)(void*);  ///< nullptr: no contract, pins fast-forward.
    };

    /// Skip up to `budget` provably idle cycles; returns how many.
    u64 fast_forward(u64 budget) {
        if (budget == 0 || blocks_.empty()) return 0;
        // A commit hook may only be skipped when it proves itself a no-op
        // (e.g. a Fifo with nothing staged). That proof holds for the whole
        // jump: no ticker runs during a skip, so nothing new can be staged
        // mid-jump. Hooks without an idle companion pin the engine.
        for (const auto& hook : commits_) {
            if (hook.idle == nullptr || !hook.idle(hook.object)) return 0;
        }
        u64 skip = budget;
        for (const auto& entry : blocks_) {
            skip = std::min(skip, entry.ticker->idle_cycles_hint());
            if (skip == 0) return 0;
        }
        for (const auto& entry : blocks_) entry.ticker->skip(skip);
        if (obs_ != nullptr) {
            obs_->event_span(obs::Recorder::kTrackEngine, "fast-forward", obs_->sys_ns(now_),
                             obs_->sys_ns(skip), "cycles", skip);
        }
        now_ += skip;
        return skip;
    }

    std::vector<Entry> blocks_;
    std::vector<CommitHook> commits_;
    Cycle now_ = 0;
    obs::Recorder* obs_ = nullptr;
};

}  // namespace flowcam::sim
