// Bounded FIFO with hardware-like two-phase semantics.
//
// In RTL, a value written into a register FIFO this cycle is visible to the
// consumer only on the next cycle. We model that with a staging area: pushes
// go to `staged_`, and `commit()` (called once per cycle by the simulation
// engine, between cycles) moves staged entries into the visible queue. This
// makes block tick order irrelevant to functional results — a key property
// for deterministic simulation (and asserted by tests/sim_fifo_test.cpp).
#pragma once

#include <cassert>
#include <deque>
#include <optional>
#include <string>
#include <utility>

#include "common/types.hpp"

namespace flowcam::sim {

template <typename T>
class Fifo {
  public:
    explicit Fifo(std::size_t capacity, std::string name = "fifo")
        : capacity_(capacity), name_(std::move(name)) {
        assert(capacity_ > 0);
    }

    /// True if a push would be accepted this cycle (combinational "ready").
    /// Hardware full/empty flags are computed against committed + staged
    /// occupancy so a producer cannot overfill within one cycle.
    [[nodiscard]] bool can_push() const {
        return queue_.size() + staged_.size() < capacity_;
    }

    /// Stage one element for visibility next cycle. Returns false when full.
    [[nodiscard]] bool push(T value) {
        if (!can_push()) return false;
        staged_.push_back(std::move(value));
        ++total_pushed_;
        return true;
    }

    [[nodiscard]] bool empty() const { return queue_.empty(); }
    [[nodiscard]] std::size_t size() const { return queue_.size(); }
    [[nodiscard]] std::size_t staged_size() const { return staged_.size(); }
    [[nodiscard]] std::size_t occupancy() const { return queue_.size() + staged_.size(); }
    [[nodiscard]] std::size_t capacity() const { return capacity_; }
    [[nodiscard]] const std::string& name() const { return name_; }

    /// Front element visible this cycle; nullopt when empty.
    [[nodiscard]] const T* front() const { return queue_.empty() ? nullptr : &queue_.front(); }

    /// Pop the front element. Precondition: !empty().
    T pop() {
        assert(!queue_.empty());
        T value = std::move(queue_.front());
        queue_.pop_front();
        ++total_popped_;
        return value;
    }

    std::optional<T> try_pop() {
        if (queue_.empty()) return std::nullopt;
        return pop();
    }

    /// True when commit() is provably a no-op — nothing staged, so the
    /// engine's fast-forward may jump over this hook (register with
    /// Engine::add_commit<&Fifo::commit, &Fifo::commit_idle>).
    [[nodiscard]] bool commit_idle() const { return staged_.empty(); }

    /// Move staged pushes into the visible queue. Called by the engine once
    /// per cycle after all tickers have run.
    void commit() {
        while (!staged_.empty()) {
            queue_.push_back(std::move(staged_.front()));
            staged_.pop_front();
        }
    }

    void clear() {
        queue_.clear();
        staged_.clear();
    }

    [[nodiscard]] u64 total_pushed() const { return total_pushed_; }
    [[nodiscard]] u64 total_popped() const { return total_popped_; }

    /// Iteration over committed entries (for schedulers that scan queues,
    /// e.g. the DLU bank selector). Mutation via iterators is allowed — the
    /// bank selector removes from the middle, like a hardware pick network.
    auto begin() { return queue_.begin(); }
    auto end() { return queue_.end(); }
    auto begin() const { return queue_.begin(); }
    auto end() const { return queue_.end(); }
    auto erase(typename std::deque<T>::iterator it) { ++total_popped_; return queue_.erase(it); }

  private:
    std::size_t capacity_;
    std::string name_;
    std::deque<T> queue_;
    std::deque<T> staged_;
    u64 total_pushed_ = 0;
    u64 total_popped_ = 0;
};

}  // namespace flowcam::sim
