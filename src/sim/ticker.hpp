// Cycle-driven simulation contract. Every hardware block in the Flow LUT
// model is a Ticker: the engine calls tick() exactly once per cycle of the
// block's clock domain, in a fixed deterministic order that mirrors the RTL
// pipeline direction (consumers before producers is handled by two-phase
// queues, see fifo.hpp).
#pragma once

#include <string>

#include "common/types.hpp"

namespace flowcam::sim {

class Ticker {
  public:
    virtual ~Ticker() = default;

    /// Advance one clock cycle. `now` is the cycle number being executed.
    virtual void tick(Cycle now) = 0;

    /// Stable block name for diagnostics and statistics dumps.
    [[nodiscard]] virtual std::string name() const = 0;
};

}  // namespace flowcam::sim
