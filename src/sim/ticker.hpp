// Cycle-driven simulation contract. Every hardware block in the Flow LUT
// model is a Ticker: the engine calls tick() exactly once per cycle of the
// block's clock domain, in a fixed deterministic order that mirrors the RTL
// pipeline direction (consumers before producers is handled by two-phase
// queues, see fifo.hpp).
#pragma once

#include <string>

#include "common/types.hpp"

namespace flowcam::sim {

class Ticker {
  public:
    virtual ~Ticker() = default;

    /// Advance one clock cycle. `now` is the cycle number being executed.
    virtual void tick(Cycle now) = 0;

    /// Stable block name for diagnostics and statistics dumps.
    [[nodiscard]] virtual std::string name() const = 0;

    /// Batched fast-forward contract: the number of upcoming *system*
    /// cycles for which this block's tick is provably a no-op (0 = busy).
    /// When every registered block reports N > 0, the engine may skip
    /// min(N) cycles in one call instead of ticking through them; blocks
    /// with internal clocks are told via skip(). Implementations must be
    /// exact — a skipped cycle must change nothing but the clock — so the
    /// fast-forwarded simulation stays cycle-identical.
    [[nodiscard]] virtual u64 idle_cycles_hint() const { return 0; }

    /// `cycles` system cycles were skipped (only ever ≤ idle_cycles_hint()).
    virtual void skip(u64 cycles) { (void)cycles; }
};

}  // namespace flowcam::sim
