# CMake generated Testfile for 
# Source directory: /root/repo
# Build directory: /root/repo/build
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/analyzer_test[1]_include.cmake")
include("/root/repo/build/bloom_test[1]_include.cmake")
include("/root/repo/build/cam_test[1]_include.cmake")
include("/root/repo/build/classifier_test[1]_include.cmake")
include("/root/repo/build/common_test[1]_include.cmake")
include("/root/repo/build/core_blocks_test[1]_include.cmake")
include("/root/repo/build/dram_controller_test[1]_include.cmake")
include("/root/repo/build/dram_pattern_test[1]_include.cmake")
include("/root/repo/build/dram_timing_test[1]_include.cmake")
include("/root/repo/build/flow_lut_param_test[1]_include.cmake")
include("/root/repo/build/flow_lut_test[1]_include.cmake")
include("/root/repo/build/flow_state_test[1]_include.cmake")
include("/root/repo/build/fpga_test[1]_include.cmake")
include("/root/repo/build/hash_cam_table_test[1]_include.cmake")
include("/root/repo/build/hash_test[1]_include.cmake")
include("/root/repo/build/ipv6_test[1]_include.cmake")
include("/root/repo/build/multi_path_test[1]_include.cmake")
include("/root/repo/build/net_test[1]_include.cmake")
include("/root/repo/build/netflow_export_test[1]_include.cmake")
include("/root/repo/build/qdr_sram_test[1]_include.cmake")
include("/root/repo/build/sim_test[1]_include.cmake")
include("/root/repo/build/table_test[1]_include.cmake")
include("/root/repo/build/workload_test[1]_include.cmake")
